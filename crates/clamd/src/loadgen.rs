//! An open-loop load generator for `clamd`.
//!
//! **Open-loop** means arrivals are scheduled on a clock, independent of
//! completions: request `i` of a run at `rate` ops/s is due at
//! `i / rate` seconds after start, and its latency is measured from that
//! *scheduled* arrival time to its response — not from the moment the
//! socket write happened. Past saturation the send backlog grows and the
//! measured latency correctly absorbs the queueing delay, which is what
//! makes the p99/p999 curves honest where a closed-loop generator would
//! flatter the server by slowing itself down.
//!
//! Key popularity is configurable: uniform, or Zipfian with exponent
//! `s` via [`rand::distributions::Zipf`]. The hit/miss mix is exact by
//! construction — hit lookups draw from the preloaded key-id range,
//! misses and fresh inserts draw from disjoint id ranges, and
//! [`key_for`] maps ids through a bijective mixer so the ranges stay
//! disjoint on the wire.
//!
//! [`sweep`] runs several arrival rates back to back (calibrating the
//! saturation point first with a closed-loop flood) and reports, per
//! level, the sustained throughput, the client-observed latency tail and
//! the server's group-commit shape over exactly that window.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use bench::TailSummary;
use bufferhash::{mix64, Key, Value};
use flashsim::{LatencyRecorder, SimDuration};
use rand::distributions::Zipf;
use rand::{Rng, SeedableRng, StdRng};

use crate::client::{ClamdClient, ClientError, Result};
use crate::proto::{self, Op, Request, RespBody, StatsFields};

/// First key id of the never-inserted range (guaranteed misses).
const MISS_ID_BASE: u64 = 1 << 40;
/// First key id of the inserted-during-run range.
const INSERT_ID_BASE: u64 = 1 << 41;

/// Maps a key id to its wire key through a bijective mixer, so disjoint
/// id ranges produce disjoint keys while still spreading over stripes.
pub fn key_for(id: u64) -> Key {
    mix64(id)
}

/// The value stored under key id `id` — deterministic, so any reader can
/// verify a lookup's payload without coordination.
pub fn value_for(id: u64) -> Value {
    id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC1A4
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Total operations per run.
    pub ops: usize,
    /// Offered arrival rate in ops/s; `f64::INFINITY` runs a closed-loop
    /// flood (used to calibrate the saturation point).
    pub rate: f64,
    /// Fraction of operations that are lookups (the rest are inserts).
    pub lookup_fraction: f64,
    /// Fraction of lookups aimed at preloaded keys (exact hits).
    pub hit_fraction: f64,
    /// Number of preloaded key ids (`1..=key_space`) hits draw from.
    pub key_space: u64,
    /// Zipf exponent for hit-key popularity; `0.0` means uniform.
    pub zipf_s: f64,
    /// RNG seed: same seed, same op sequence.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            connections: 4,
            ops: 20_000,
            rate: f64::INFINITY,
            lookup_fraction: 0.8,
            hit_fraction: 0.5,
            key_space: 20_000,
            zipf_s: 0.99,
            seed: 0x10ad,
        }
    }
}

/// In-flight window per connection for closed-loop flood runs.
const FLOOD_WINDOW: usize = 64;

/// What one run observed.
pub struct LoadReport {
    /// The offered rate (ops/s; infinite for flood runs).
    pub offered: f64,
    /// Sustained throughput: completed ops over the run's wall time.
    pub achieved: f64,
    /// Operations completed.
    pub completed: usize,
    /// Lookups that hit.
    pub hits: usize,
    /// Lookups that missed.
    pub misses: usize,
    /// Inserts acknowledged.
    pub inserts: usize,
    /// Server `ERROR` responses.
    pub errors: usize,
    /// Client-observed latency distribution (from scheduled arrival for
    /// open-loop runs, from send for flood runs).
    pub latencies: LatencyRecorder,
    /// Tail summary of `latencies`.
    pub tail: TailSummary,
}

/// One operation of a precomputed run schedule.
struct PlannedOp {
    op: Op,
    /// Nanoseconds after run start this op is due.
    due_ns: u64,
}

/// Builds the deterministic per-connection schedules for a run.
fn plan(config: &LoadgenConfig) -> Vec<Vec<PlannedOp>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = (config.zipf_s > 0.0 && config.key_space > 0)
        .then(|| Zipf::new(config.key_space, config.zipf_s));
    let mut plans: Vec<Vec<PlannedOp>> = (0..config.connections).map(|_| Vec::new()).collect();
    let interval_ns = if config.rate.is_finite() { 1e9 / config.rate } else { 0.0 };
    let mut miss_seq = 0u64;
    for i in 0..config.ops {
        let due_ns = (i as f64 * interval_ns) as u64;
        let op = if rng.gen_bool(config.lookup_fraction) {
            let id = if config.key_space > 0 && rng.gen_bool(config.hit_fraction) {
                match &zipf {
                    Some(z) => z.sample(&mut rng),
                    None => rng.gen_range(1..=config.key_space),
                }
            } else {
                miss_seq += 1;
                MISS_ID_BASE + miss_seq
            };
            Op::Lookup { key: key_for(id) }
        } else {
            let id = INSERT_ID_BASE + config.seed.wrapping_mul(1 << 22) + i as u64;
            Op::Insert { key: key_for(id), value: value_for(id) }
        };
        plans[i % config.connections].push(PlannedOp { op, due_ns });
    }
    plans
}

/// Per-connection completion tally.
#[derive(Default)]
struct ConnTally {
    hits: usize,
    misses: usize,
    inserts: usize,
    errors: usize,
    latencies: LatencyRecorder,
}

impl ConnTally {
    fn absorb(&mut self, body: &RespBody) {
        match body {
            RespBody::Value { found: true, .. } => self.hits += 1,
            RespBody::Value { found: false, .. } => self.misses += 1,
            RespBody::Inserted => self.inserts += 1,
            RespBody::Error { .. } => self.errors += 1,
            _ => {}
        }
    }
}

/// Reads responses off `stream` until `expected` frames have arrived,
/// calling `on_response(index, response)` for each.
fn drain_responses(
    stream: &mut TcpStream,
    expected: usize,
    mut on_response: impl FnMut(usize, proto::Response),
) -> Result<()> {
    let mut buf: Vec<u8> = Vec::new();
    let mut start = 0usize;
    let mut chunk = [0u8; 64 * 1024];
    let mut seen = 0usize;
    while seen < expected {
        while seen < expected {
            match proto::decode_response(&buf[start..])? {
                Some((response, consumed)) => {
                    start += consumed;
                    on_response(seen, response);
                    seen += 1;
                }
                None => break,
            }
        }
        if seen >= expected {
            break;
        }
        if start >= buf.len() / 2 {
            buf.drain(..start);
            start = 0;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-run",
            )));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    Ok(())
}

/// Runs one open-loop connection: a sender thread paces the schedule
/// while this thread drains responses (in submission order) and charges
/// each completion against its *scheduled* arrival time.
fn run_open_loop_conn(addr: SocketAddr, ops: Vec<PlannedOp>, start: Instant) -> Result<ConnTally> {
    let mut read_half = TcpStream::connect(addr)?;
    read_half.set_nodelay(true)?;
    let mut write_half = read_half.try_clone()?;
    let due: Vec<u64> = ops.iter().map(|p| p.due_ns).collect();
    let expected = ops.len();
    let sender = std::thread::spawn(move || -> Result<()> {
        let mut frame = Vec::new();
        for (seq, planned) in ops.into_iter().enumerate() {
            let target = start + Duration::from_nanos(planned.due_ns);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
            frame.clear();
            proto::encode_request(&Request { id: seq as u64, op: planned.op }, &mut frame);
            write_half.write_all(&frame)?;
        }
        Ok(())
    });
    let mut tally = ConnTally::default();
    let drained = drain_responses(&mut read_half, expected, |seq, response| {
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        let waited = elapsed_ns.saturating_sub(due[seq]);
        tally.latencies.record(SimDuration::from_nanos(waited));
        tally.absorb(&response.body);
    });
    let sent = sender.join().expect("sender thread panicked");
    drained?;
    sent?;
    Ok(tally)
}

/// Runs one closed-loop flood connection: keep [`FLOOD_WINDOW`] requests
/// in flight, send the next on each completion. Latency is measured from
/// each request's send time.
fn run_flood_conn(addr: SocketAddr, ops: Vec<PlannedOp>) -> Result<ConnTally> {
    let mut client = ClamdClient::connect(addr)?;
    let mut tally = ConnTally::default();
    let mut send_times: std::collections::VecDeque<Instant> = std::collections::VecDeque::new();
    let mut next = 0usize;
    let mut done = 0usize;
    while done < ops.len() {
        while next < ops.len() && send_times.len() < FLOOD_WINDOW {
            client.send(ops[next].op.clone())?;
            send_times.push_back(Instant::now());
            next += 1;
        }
        let response = client.recv()?;
        let sent_at = send_times.pop_front().expect("a response implies a send");
        tally.latencies.record(SimDuration::from_nanos(sent_at.elapsed().as_nanos() as u64));
        tally.absorb(&response.body);
        done += 1;
    }
    Ok(tally)
}

/// Runs one load level against a server and reports what the clients saw.
pub fn run(addr: SocketAddr, config: &LoadgenConfig) -> Result<LoadReport> {
    assert!(config.connections > 0, "need at least one connection");
    let plans = plan(config);
    let started = Instant::now();
    let tallies: Vec<Result<ConnTally>> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .into_iter()
            .map(|ops| {
                scope.spawn(move || {
                    if config.rate.is_finite() {
                        run_open_loop_conn(addr, ops, started)
                    } else {
                        run_flood_conn(addr, ops)
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen conn panicked")).collect()
    });
    let wall = started.elapsed();
    let mut merged = ConnTally::default();
    for tally in tallies {
        let tally = tally?;
        merged.hits += tally.hits;
        merged.misses += tally.misses;
        merged.inserts += tally.inserts;
        merged.errors += tally.errors;
        merged.latencies.merge(&tally.latencies);
    }
    let completed = merged.latencies.len();
    let tail = TailSummary::from_recorder(&mut merged.latencies);
    Ok(LoadReport {
        offered: config.rate,
        achieved: completed as f64 / wall.as_secs_f64().max(1e-9),
        completed,
        hits: merged.hits,
        misses: merged.misses,
        inserts: merged.inserts,
        errors: merged.errors,
        latencies: merged.latencies,
        tail,
    })
}

/// Preloads key ids `1..=key_space` over the wire in batch frames,
/// returning the number of acknowledged inserts.
pub fn preload(addr: SocketAddr, key_space: u64) -> Result<u64> {
    let mut client = ClamdClient::connect(addr)?;
    let mut acked = 0u64;
    let mut batch: Vec<(Key, Value)> = Vec::with_capacity(1024);
    for id in 1..=key_space {
        batch.push((key_for(id), value_for(id)));
        if batch.len() == 1024 || id == key_space {
            acked += u64::from(client.insert_batch(std::mem::take(&mut batch))?);
            batch.reserve(1024);
        }
    }
    Ok(acked)
}

/// One level of a load sweep.
pub struct SweepLevel {
    /// What the clients measured at this level.
    pub report: LoadReport,
    /// Server-ledger delta over exactly this level's window (group-commit
    /// shape, admissions, served counts).
    pub server: StatsFields,
}

/// Calibrates the saturation throughput with a closed-loop flood, then
/// sweeps open-loop arrival rates at the given multiples of it (e.g.
/// `[0.5, 0.9, 1.5]` spans under-load through past-saturation). Returns
/// the flood report plus one [`SweepLevel`] per multiple.
pub fn sweep(
    addr: SocketAddr,
    config: &LoadgenConfig,
    multiples: &[f64],
) -> Result<(LoadReport, Vec<SweepLevel>)> {
    let flood = run(addr, &LoadgenConfig { rate: f64::INFINITY, ..config.clone() })?;
    let capacity = flood.achieved;
    let mut control = ClamdClient::connect(addr)?;
    let mut levels = Vec::with_capacity(multiples.len());
    for (i, multiple) in multiples.iter().enumerate() {
        let before = control.stats()?.0;
        let report = run(
            addr,
            &LoadgenConfig {
                rate: capacity * multiple,
                seed: config.seed.wrapping_add(1 + i as u64),
                ..config.clone()
            },
        )?;
        let after = control.stats()?.0;
        levels.push(SweepLevel { report, server: after.delta(&before) });
    }
    Ok((flood, levels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_paced() {
        let config =
            LoadgenConfig { connections: 3, ops: 999, rate: 1_000_000.0, ..Default::default() };
        let a = plan(&config);
        let b = plan(&config);
        assert_eq!(a.len(), 3);
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), 999);
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.len(), pb.len());
            for (x, y) in pa.iter().zip(pb) {
                assert_eq!(x.op, y.op);
                assert_eq!(x.due_ns, y.due_ns);
            }
        }
        // 1M ops/s → due times step in microseconds, round-robin over
        // connections, monotone within each.
        for p in &a {
            for pair in p.windows(2) {
                assert!(pair[0].due_ns < pair[1].due_ns);
            }
        }
        // Flood plans are all due immediately.
        let flood = plan(&LoadgenConfig { rate: f64::INFINITY, ops: 10, ..config });
        assert!(flood.iter().flatten().all(|p| p.due_ns == 0));
    }

    #[test]
    fn planned_mix_respects_fractions_and_ranges() {
        let config = LoadgenConfig {
            connections: 1,
            ops: 10_000,
            rate: f64::INFINITY,
            lookup_fraction: 0.75,
            hit_fraction: 0.4,
            key_space: 500,
            zipf_s: 0.0,
            ..Default::default()
        };
        let plans = plan(&config);
        let mut lookups = 0usize;
        let mut inserts = 0usize;
        let mut hit_range = 0usize;
        let hit_keys: std::collections::HashSet<Key> = (1..=500).map(key_for).collect();
        for p in plans.iter().flatten() {
            match &p.op {
                Op::Lookup { key } => {
                    lookups += 1;
                    if hit_keys.contains(key) {
                        hit_range += 1;
                    }
                }
                Op::Insert { .. } => inserts += 1,
                other => panic!("unexpected planned op {other:?}"),
            }
        }
        assert_eq!(lookups + inserts, 10_000);
        let lf = lookups as f64 / 10_000.0;
        assert!((lf - 0.75).abs() < 0.03, "lookup fraction {lf}");
        let hf = hit_range as f64 / lookups as f64;
        assert!((hf - 0.4).abs() < 0.03, "hit fraction {hf}");
    }

    #[test]
    fn id_ranges_stay_disjoint_through_the_mixer() {
        // mix64 is bijective, so the three id ranges cannot collide.
        let preloaded: std::collections::HashSet<Key> = (1..=1000).map(key_for).collect();
        for i in 1..=1000u64 {
            assert!(!preloaded.contains(&key_for(MISS_ID_BASE + i)));
            assert!(!preloaded.contains(&key_for(INSERT_ID_BASE + i)));
        }
        assert_ne!(value_for(1), value_for(2));
    }

    #[test]
    fn zipf_plans_skew_toward_low_ids() {
        let config = LoadgenConfig {
            connections: 1,
            ops: 20_000,
            rate: f64::INFINITY,
            lookup_fraction: 1.0,
            hit_fraction: 1.0,
            key_space: 10_000,
            zipf_s: 1.1,
            ..Default::default()
        };
        let head: std::collections::HashSet<Key> = (1..=100).map(key_for).collect();
        let plans = plan(&config);
        let head_draws = plans
            .iter()
            .flatten()
            .filter(|p| matches!(&p.op, Op::Lookup { key } if head.contains(key)))
            .count();
        // Under uniform popularity the head 1% would catch ~200 of 20k
        // draws; Zipf(1.1) concentrates far more mass there.
        assert!(head_draws > 2_000, "only {head_draws} of 20000 draws hit the head");
    }
}
