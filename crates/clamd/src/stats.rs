//! The `clamd` server-side statistics ledger.
//!
//! [`ServerStats`] counts what the *service* did — requests served,
//! group-commit gathers, ring admissions, wire errors — as opposed to
//! [`ClamStats`](bufferhash::ClamStats), which counts what the *store*
//! did underneath. A STATS request returns both ledgers (numeric fields
//! plus rendered text), and the `Display` impl mirrors the pipe-separated
//! ledger style used across the workspace, eliding segments that never
//! fired.

use std::fmt;

use crate::proto::StatsFields;

/// Maximum batch-size histogram index tracked explicitly; larger gathers
/// accumulate in the final bucket (same cap policy as the CLAM's
/// histograms).
const HISTOGRAM_CAP: usize = 64;

/// Counters for one `clamd` server instance.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Insert operations acknowledged (batch frames count each op).
    pub inserts: u64,
    /// Lookup operations answered (batch frames count each key).
    pub lookups: u64,
    /// Delete operations applied.
    pub deletes: u64,
    /// FLUSH barriers served.
    pub flushes: u64,
    /// STATS requests served.
    pub stats_calls: u64,
    /// Lookups that found a value.
    pub lookup_hits: u64,
    /// Lookups that found nothing.
    pub lookup_misses: u64,
    /// Connections dropped after a protocol violation.
    pub wire_errors: u64,
    /// Group-commit gathers executed by the batcher thread.
    pub batches: u64,
    /// Requests drained across all gathers.
    pub batched_requests: u64,
    /// Gathers that lingered (waited out the group-commit window) for
    /// concurrent arrivals instead of firing on a full queue.
    pub group_commit_waits: u64,
    /// Largest gather, in requests.
    pub batch_high_water: u64,
    /// Histogram of gather sizes: `batch_histogram[n]` is the number of
    /// gathers that drained exactly `n` requests (the final bucket
    /// accumulates everything at or beyond its index).
    pub batch_histogram: Vec<u64>,
    /// Coalesced `insert_batch` ring admissions (one per contiguous run of
    /// insert requests in a gather).
    pub insert_admissions: u64,
    /// Coalesced `lookup_batch` ring admissions.
    pub lookup_admissions: u64,
    /// Per-key delete admissions.
    pub delete_admissions: u64,
    /// Connections accepted.
    pub connections_opened: u64,
    /// Connections closed (cleanly or after an error).
    pub connections_closed: u64,
    /// Scalar lookups answered on the batcher bypass: the shard's linger
    /// queue was empty and the store's epoch-validated read fast path
    /// resolved the key without a gather or a ring admission.
    pub bypass_hits: u64,
    /// Most recent per-shard in-flight depth snapshot (queued plus
    /// executing requests), refreshed by STATS requests and captured at
    /// shutdown entry. Empty until the first snapshot.
    pub shard_depths: Vec<u64>,
    /// Per-super-table write-lock acquisitions across the store, from the
    /// store's table-lock ledger (refreshed by each STATS snapshot).
    pub table_write_acquisitions: u64,
    /// Table write acquisitions that found the op lock already held and
    /// had to wait (fine-grained writer collisions on one table).
    pub table_write_contended: u64,
    /// High-water mark of concurrently write-locked super tables within
    /// any single stripe — ≥ 2 proves intra-stripe write overlap.
    pub table_lock_high_water: u64,
}

impl ServerStats {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one group-commit gather of `size` requests; `waited` marks
    /// gathers that lingered for concurrent arrivals before firing.
    pub fn record_batch(&mut self, size: usize, waited: bool) {
        self.batches += 1;
        self.batched_requests += size as u64;
        self.batch_high_water = self.batch_high_water.max(size as u64);
        if waited {
            self.group_commit_waits += 1;
        }
        let idx = size.min(HISTOGRAM_CAP);
        if self.batch_histogram.len() <= idx {
            self.batch_histogram.resize(idx + 1, 0);
        }
        self.batch_histogram[idx] += 1;
    }

    /// Mean requests per gather.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Folds another ledger into this one — used to merge the per-shard
    /// gather ledgers into the STATS view. Counters sum, the batch-size
    /// histogram merges bucket-wise, the high-water mark takes the max,
    /// and the `shard_depths` gauge keeps whichever side has a snapshot
    /// (shard ledgers never carry one).
    pub fn absorb(&mut self, other: &ServerStats) {
        self.inserts += other.inserts;
        self.lookups += other.lookups;
        self.deletes += other.deletes;
        self.flushes += other.flushes;
        self.stats_calls += other.stats_calls;
        self.lookup_hits += other.lookup_hits;
        self.lookup_misses += other.lookup_misses;
        self.wire_errors += other.wire_errors;
        self.batches += other.batches;
        self.batched_requests += other.batched_requests;
        self.group_commit_waits += other.group_commit_waits;
        self.batch_high_water = self.batch_high_water.max(other.batch_high_water);
        if self.batch_histogram.len() < other.batch_histogram.len() {
            self.batch_histogram.resize(other.batch_histogram.len(), 0);
        }
        for (d, s) in self.batch_histogram.iter_mut().zip(&other.batch_histogram) {
            *d += s;
        }
        self.insert_admissions += other.insert_admissions;
        self.lookup_admissions += other.lookup_admissions;
        self.delete_admissions += other.delete_admissions;
        self.connections_opened += other.connections_opened;
        self.connections_closed += other.connections_closed;
        self.bypass_hits += other.bypass_hits;
        if self.shard_depths.is_empty() {
            self.shard_depths = other.shard_depths.clone();
        }
        self.table_write_acquisitions += other.table_write_acquisitions;
        self.table_write_contended += other.table_write_contended;
        self.table_lock_high_water = self.table_lock_high_water.max(other.table_lock_high_water);
    }

    /// The numeric field vector a STATS response carries.
    pub fn to_fields(&self) -> StatsFields {
        StatsFields {
            inserts: self.inserts,
            lookups: self.lookups,
            deletes: self.deletes,
            flushes: self.flushes,
            stats_calls: self.stats_calls,
            lookup_hits: self.lookup_hits,
            lookup_misses: self.lookup_misses,
            batches: self.batches,
            batched_requests: self.batched_requests,
            group_commit_waits: self.group_commit_waits,
            batch_high_water: self.batch_high_water,
            insert_admissions: self.insert_admissions,
            lookup_admissions: self.lookup_admissions,
            delete_admissions: self.delete_admissions,
            wire_errors: self.wire_errors,
            bypass_hits: self.bypass_hits,
            shards: self.shard_depths.len() as u64,
            shard_inflight: self.shard_depths.iter().sum(),
            table_write_acquisitions: self.table_write_acquisitions,
            table_write_contended: self.table_write_contended,
            table_lock_high_water: self.table_lock_high_water,
        }
    }
}

impl fmt::Display for ServerStats {
    /// One-line operational summary in the workspace ledger style: served
    /// op counts, group-commit shape, ring admissions, connection churn —
    /// with untouched segments elided.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "served: {} inserts | {} lookups ({} hits / {} misses) | {} deletes | {} flushes | {} stats",
            self.inserts, self.lookups, self.lookup_hits, self.lookup_misses, self.deletes,
            self.flushes, self.stats_calls,
        )?;
        if self.batches > 0 {
            write!(
                f,
                " | group commit: {} gathers, mean {:.1} reqs, hwm {}, {} lingered",
                self.batches,
                self.mean_batch(),
                self.batch_high_water,
                self.group_commit_waits
            )?;
        }
        if self.insert_admissions + self.lookup_admissions + self.delete_admissions > 0 {
            write!(
                f,
                " | admissions: {} insert, {} lookup, {} delete",
                self.insert_admissions, self.lookup_admissions, self.delete_admissions
            )?;
        }
        if self.bypass_hits > 0 {
            write!(f, " | bypass: {} fast-path lookups", self.bypass_hits)?;
        }
        if !self.shard_depths.is_empty() {
            write!(f, " | shard depths: {:?}", self.shard_depths)?;
        }
        if self.table_write_acquisitions > 0 {
            write!(
                f,
                " | table locks: {} acquisitions, {} contended, concurrency hwm {}",
                self.table_write_acquisitions,
                self.table_write_contended,
                self.table_lock_high_water
            )?;
        }
        if self.connections_opened > 0 {
            write!(
                f,
                " | conns: {} opened / {} closed",
                self.connections_opened, self.connections_closed
            )?;
        }
        if self.wire_errors > 0 {
            write!(f, " | wire errors: {}", self.wire_errors)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_accumulate_histogram_and_high_water() {
        let mut s = ServerStats::new();
        s.record_batch(1, false);
        s.record_batch(1, false);
        s.record_batch(8, true);
        s.record_batch(1000, true);
        assert_eq!(s.batches, 4);
        assert_eq!(s.batched_requests, 1010);
        assert_eq!(s.batch_high_water, 1000);
        assert_eq!(s.group_commit_waits, 2);
        assert_eq!(s.batch_histogram[1], 2);
        assert_eq!(s.batch_histogram[8], 1);
        assert_eq!(*s.batch_histogram.last().unwrap(), 1, "cap bucket");
        assert!((s.mean_batch() - 1010.0 / 4.0).abs() < 1e-9);
        assert_eq!(ServerStats::new().mean_batch(), 0.0);
    }

    #[test]
    fn to_fields_copies_every_counter() {
        let mut s = ServerStats::new();
        s.inserts = 1;
        s.lookups = 2;
        s.deletes = 3;
        s.flushes = 4;
        s.stats_calls = 5;
        s.lookup_hits = 6;
        s.lookup_misses = 7;
        s.record_batch(10, true);
        s.insert_admissions = 8;
        s.lookup_admissions = 9;
        s.delete_admissions = 10;
        s.wire_errors = 11;
        s.bypass_hits = 12;
        s.shard_depths = vec![3, 0, 4];
        let f = s.to_fields();
        assert_eq!(f.inserts, 1);
        assert_eq!(f.lookups, 2);
        assert_eq!(f.deletes, 3);
        assert_eq!(f.flushes, 4);
        assert_eq!(f.stats_calls, 5);
        assert_eq!(f.lookup_hits, 6);
        assert_eq!(f.lookup_misses, 7);
        assert_eq!(f.batches, 1);
        assert_eq!(f.batched_requests, 10);
        assert_eq!(f.group_commit_waits, 1);
        assert_eq!(f.batch_high_water, 10);
        assert_eq!(f.insert_admissions, 8);
        assert_eq!(f.lookup_admissions, 9);
        assert_eq!(f.delete_admissions, 10);
        assert_eq!(f.wire_errors, 11);
        assert_eq!(f.bypass_hits, 12);
        assert_eq!(f.shards, 3);
        assert_eq!(f.shard_inflight, 7);
    }

    #[test]
    fn absorb_merges_shard_ledgers() {
        let mut total = ServerStats::new();
        total.inserts = 10;
        total.flushes = 1;
        total.connections_opened = 2;
        total.record_batch(4, true);
        let mut shard = ServerStats::new();
        shard.inserts = 5;
        shard.lookups = 7;
        shard.lookup_hits = 4;
        shard.lookup_misses = 3;
        shard.bypass_hits = 2;
        shard.insert_admissions = 1;
        shard.record_batch(8, false);
        total.absorb(&shard);
        assert_eq!(total.inserts, 15);
        assert_eq!(total.lookups, 7);
        assert_eq!(total.bypass_hits, 2);
        assert_eq!(total.batches, 2);
        assert_eq!(total.batched_requests, 12);
        assert_eq!(total.batch_high_water, 8, "high water takes the max");
        assert_eq!(total.batch_histogram[4], 1);
        assert_eq!(total.batch_histogram[8], 1);
        assert_eq!(total.group_commit_waits, 1);
        assert_eq!(total.connections_opened, 2, "shard ledgers carry no connections");
        // The depth gauge survives the merge from whichever side has it.
        total.shard_depths = vec![1, 2];
        let mut merged = ServerStats::new();
        merged.absorb(&total);
        assert_eq!(merged.shard_depths, vec![1, 2]);
    }

    #[test]
    fn bypass_and_shard_depths_display() {
        let mut s = ServerStats::new();
        s.bypass_hits = 5;
        s.shard_depths = vec![0, 3];
        let text = s.to_string();
        assert!(text.contains("bypass: 5 fast-path lookups"), "{text}");
        assert!(text.contains("shard depths: [0, 3]"), "{text}");
        let quiet = ServerStats::new().to_string();
        assert!(!quiet.contains("bypass:") && !quiet.contains("shard depths:"), "{quiet}");
    }

    #[test]
    fn table_lock_ledger_absorbs_and_displays() {
        let mut total = ServerStats::new();
        total.table_write_acquisitions = 10;
        total.table_write_contended = 2;
        total.table_lock_high_water = 3;
        let mut other = ServerStats::new();
        other.table_write_acquisitions = 5;
        other.table_write_contended = 1;
        other.table_lock_high_water = 7;
        total.absorb(&other);
        assert_eq!(total.table_write_acquisitions, 15);
        assert_eq!(total.table_write_contended, 3);
        assert_eq!(total.table_lock_high_water, 7, "high water takes the max");
        let f = total.to_fields();
        assert_eq!(f.table_write_acquisitions, 15);
        assert_eq!(f.table_write_contended, 3);
        assert_eq!(f.table_lock_high_water, 7);
        let text = total.to_string();
        assert!(
            text.contains("table locks: 15 acquisitions, 3 contended, concurrency hwm 7"),
            "{text}"
        );
        let quiet = ServerStats::new().to_string();
        assert!(!quiet.contains("table locks:"), "{quiet}");
    }

    #[test]
    fn display_elides_untouched_segments() {
        let quiet = ServerStats::new().to_string();
        assert!(quiet.starts_with("served:"), "{quiet}");
        for absent in ["group commit:", "admissions:", "conns:", "wire errors:"] {
            assert!(!quiet.contains(absent), "unexpected {absent:?} in {quiet}");
        }
        let mut s = ServerStats::new();
        s.inserts = 100;
        s.record_batch(25, true);
        s.record_batch(75, false);
        s.insert_admissions = 2;
        s.connections_opened = 3;
        s.connections_closed = 3;
        s.wire_errors = 1;
        let text = s.to_string();
        for needle in [
            "served: 100 inserts",
            "group commit: 2 gathers, mean 50.0 reqs, hwm 75, 1 lingered",
            "admissions: 2 insert, 0 lookup, 0 delete",
            "conns: 3 opened / 3 closed",
            "wire errors: 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in {text}");
        }
    }
}
