//! Sharded group commit and the seqlock read fast path must be
//! invisible except for speed: every outcome a client (or a store
//! caller) observes has to be identical to the single-gather,
//! coarse-locked baseline. Three angles:
//!
//! * store level — the same op sequence through a fine-grained
//!   [`StripedClam`] (per-table write locks + seqlock read fast path)
//!   and a coarse one over **all five** flashsim backends, comparing
//!   per-key values, sources, flash reads, the stores' flush/eviction
//!   ledgers and the devices' raw write/trim/erase traffic;
//! * wire level — two real `clamd` servers (shards=1 + coarse locks vs
//!   shards=4 + fast path) answering identical per-connection scripts
//!   with identical response streams;
//! * starvation — one stripe hammered with inserts while lookups run on
//!   the other stripes, with a bounded tail as the liveness check.

use std::time::{Duration, Instant};

use bufferhash::{hash_with_seed, Clam, ClamConfig, StripedClam};
use clamd::batcher::BatcherConfig;
use clamd::client::ClamdClient;
use clamd::proto::{Op, RespBody};
use clamd::server::{boot_sim, ephemeral_sim_server_sharded, ClamdServer, ServerConfig};
use flashsim::{Device, DramDevice, FileDevice, FlashChip, MagneticDisk, SharedDevice, Ssd};
use proptest::collection::vec;
use proptest::prelude::*;

const STRIPES: usize = 4;
const FLASH: u64 = 8 << 20;
const DRAM: u64 = 2 << 20;
/// Seed of [`StripedClam::stripe_index`]'s routing hash; the starvation
/// test uses it to aim keys at specific stripes.
const STRIPE_SEED: u64 = 0x57_e19e;

/// Stripes `device` exactly the way the server boot path does, keeping a
/// handle on the underlying device so tests can audit its I/O ledger.
fn striped<D: Device>(device: D) -> (StripedClam<SharedDevice<D>>, SharedDevice<D>) {
    let cfg = ClamConfig::small_test(FLASH / STRIPES as u64, DRAM / STRIPES as u64).unwrap();
    let shared = SharedDevice::new(device);
    let stripes = shared
        .split(STRIPES)
        .unwrap()
        .into_iter()
        .map(|partition| Clam::new(partition, cfg.clone()).unwrap())
        .collect();
    (StripedClam::new(stripes), shared)
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("clamd-equiv-{}-{}", std::process::id(), name));
    p
}

/// Drives the sampled op sequence through both stores and asserts every
/// observable outcome matches, then audits the whole keyspace, the two
/// stores' ledgers, and the raw flash traffic on the backing devices.
fn assert_stores_agree<A: Device, B: Device>(
    (fast, fast_dev): &(StripedClam<SharedDevice<A>>, SharedDevice<A>),
    (coarse, coarse_dev): &(StripedClam<SharedDevice<B>>, SharedDevice<B>),
    ops: &[(u8, u64)],
    seed: u64,
    label: &str,
) {
    coarse.set_coarse_locks(true);
    // Force the fine store's batches through the multi-chunk scoped-thread
    // dispatch (gate + rendezvous) even on single-core hosts, so the
    // identity claim is tested against the genuinely concurrent path.
    fast.set_batch_parallelism(Some(3));
    let key = |raw: u64| hash_with_seed(raw % 192, seed);
    for (i, &(kind, raw)) in ops.iter().enumerate() {
        match kind % 10 {
            0..=2 => {
                fast.insert(key(raw), raw).unwrap();
                coarse.insert(key(raw), raw).unwrap();
            }
            3 => {
                fast.delete(key(raw)).unwrap();
                coarse.delete(key(raw)).unwrap();
            }
            4 => {
                let pairs: Vec<(u64, u64)> =
                    (0..32).map(|j| (key(raw.wrapping_add(j)), raw ^ j)).collect();
                fast.insert_batch(&pairs).unwrap();
                coarse.insert_batch(&pairs).unwrap();
            }
            5 => {
                let keys: Vec<u64> = (0..24).map(|j| key(raw.wrapping_add(j * 3))).collect();
                let f = fast.lookup_batch(&keys).unwrap();
                let c = coarse.lookup_batch(&keys).unwrap();
                for (j, (fo, co)) in f.outcomes.iter().zip(c.outcomes.iter()).enumerate() {
                    assert_eq!(fo.value, co.value, "{label}: op {i} batch slot {j}");
                    assert_eq!(fo.source, co.source, "{label}: op {i} batch slot {j}");
                    assert_eq!(fo.flash_reads, co.flash_reads, "{label}: op {i} batch slot {j}");
                }
            }
            6 => {
                fast.flush_all().unwrap();
                coarse.flush_all().unwrap();
            }
            _ => {
                let f = fast.lookup(key(raw)).unwrap();
                let c = coarse.lookup(key(raw)).unwrap();
                assert_eq!(f.value, c.value, "{label}: op {i}");
                assert_eq!(f.source, c.source, "{label}: op {i}");
                assert_eq!(f.flash_reads, c.flash_reads, "{label}: op {i}");
            }
        }
    }
    // Full-keyspace audit: both stores hold exactly the same map.
    let keys: Vec<u64> = (0..192).map(key).collect();
    let f = fast.lookup_batch(&keys).unwrap();
    let c = coarse.lookup_batch(&keys).unwrap();
    for (j, (fo, co)) in f.outcomes.iter().zip(c.outcomes.iter()).enumerate() {
        assert_eq!(fo.value, co.value, "{label}: audit slot {j}");
        assert_eq!(fo.source, co.source, "{label}: audit slot {j}");
    }
    // Both ledgers counted every lookup; only the fast store used the
    // epoch-validated path, and only when writes left it room to.
    let (fs, cs) = (fast.stats(), coarse.stats());
    assert_eq!(fs.lookup_hits, cs.lookup_hits, "{label}");
    assert_eq!(fs.lookup_misses, cs.lookup_misses, "{label}");
    assert_eq!(cs.fast_lookups, 0, "{label}: coarse mode must never take the fast path");
    // Write-side identity: the fine-grained per-table write path must
    // replay the coarse baseline's flush/eviction history exactly —
    // same flush count and sequence effects, same forced evictions,
    // same coalesced write runs, same cuckoo cascade shape, and the
    // same per-op latency totals (simulated time is deterministic).
    assert_eq!(fs.flushes, cs.flushes, "{label}: flush count");
    assert_eq!(fs.forced_evictions, cs.forced_evictions, "{label}: forced evictions");
    assert_eq!(fs.coalesced_flush_writes, cs.coalesced_flush_writes, "{label}: coalesced runs");
    assert_eq!(fs.cascade_histogram, cs.cascade_histogram, "{label}: cascade shape");
    assert_eq!(fs.inserts.len(), cs.inserts.len(), "{label}: insert count");
    assert_eq!(fs.inserts.total(), cs.inserts.total(), "{label}: summed insert latency");
    assert_eq!(fs.deletes.len(), cs.deletes.len(), "{label}: delete count");
    assert_eq!(fs.deletes.total(), cs.deletes.total(), "{label}: summed delete latency");
    // Only the fine store exercises the table-lock ledger.
    assert!(fs.table_write_acquisitions > 0, "{label}: fine writes must take table locks");
    assert_eq!(cs.table_write_acquisitions, 0, "{label}: coarse mode takes no table locks");
    // Device-level identity: byte-for-byte the same flash write, trim
    // and erase traffic (reads too — lookup outcomes already matched).
    let (fio, cio) = (fast_dev.with(|d| d.stats()), coarse_dev.with(|d| d.stats()));
    assert_eq!(fio.writes, cio.writes, "{label}: flash writes");
    assert_eq!(fio.bytes_written, cio.bytes_written, "{label}: flash bytes written");
    assert_eq!(fio.trims, cio.trims, "{label}: trims");
    assert_eq!(fio.erases, cio.erases, "{label}: erases");
    assert_eq!(fio.reads, cio.reads, "{label}: flash reads");
    assert_eq!(fio.bytes_read, cio.bytes_read, "{label}: flash bytes read");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The fast-path store and the coarse-locked baseline are
    /// indistinguishable — per value, per source, per flash read — on
    /// every one of the five flashsim backends.
    #[test]
    fn fast_and_coarse_stores_agree_on_every_backend(
        seed in any::<u64>(),
        ops in vec((0u8..10, any::<u64>()), 150..300),
    ) {
        assert_stores_agree(
            &striped(Ssd::intel(FLASH).unwrap()),
            &striped(Ssd::intel(FLASH).unwrap()),
            &ops, seed, "ssd",
        );
        assert_stores_agree(
            &striped(DramDevice::new(FLASH).unwrap()),
            &striped(DramDevice::new(FLASH).unwrap()),
            &ops, seed, "dram",
        );
        assert_stores_agree(
            &striped(FlashChip::new(FLASH).unwrap()),
            &striped(FlashChip::new(FLASH).unwrap()),
            &ops, seed, "flash-chip",
        );
        assert_stores_agree(
            &striped(MagneticDisk::new(FLASH).unwrap()),
            &striped(MagneticDisk::new(FLASH).unwrap()),
            &ops, seed, "disk",
        );
        let (pf, pc) = (temp_path(&format!("f-{seed:x}")), temp_path(&format!("c-{seed:x}")));
        let _ = std::fs::remove_file(&pf);
        let _ = std::fs::remove_file(&pc);
        assert_stores_agree(
            &striped(FileDevice::with_queue_depth(&pf, FLASH, 4).unwrap()),
            &striped(FileDevice::with_queue_depth(&pc, FLASH, 4).unwrap()),
            &ops, seed, "file",
        );
        let _ = std::fs::remove_file(&pf);
        let _ = std::fs::remove_file(&pc);
    }
}

/// Two tables of **one stripe** must hold their write locks at the same
/// time during a fine-grained batch: the per-stripe concurrency
/// high-water ledger proves the commits overlapped instead of
/// serializing behind a stripe-global lock. The forced chunk count makes
/// this deterministic on any host — the chunks rendezvous on a barrier
/// with their first table lock held, so all of them demonstrably hold a
/// lock at one instant even when the OS time-slices them on one core.
#[test]
fn fine_batch_write_locks_overlap_within_one_stripe() {
    let cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
    let store = StripedClam::new(vec![Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap()]);
    store.set_batch_parallelism(Some(4));
    // Enough keys to populate several super tables of the single stripe.
    let ops: Vec<(u64, u64)> = (0..4_000u64).map(|i| (hash_with_seed(i, 0x5eed), i)).collect();
    store.insert_batch(&ops).unwrap();
    let stats = store.stats();
    assert!(
        stats.table_lock_high_water >= 2,
        "a fine batch over one stripe must write-lock >= 2 tables concurrently: {stats}"
    );
    assert!(stats.table_write_acquisitions > 0, "{stats}");
    // The batch's effects are intact despite the concurrent commits.
    for (k, v) in ops.iter().rev().take(500) {
        assert_eq!(store.lookup(*k).unwrap().value, Some(*v), "key {k:#x}");
    }
}

/// A deterministic per-connection op script over a keyspace disjoint
/// from every other connection's, so the response stream is a pure
/// function of the script — whatever the server's shard count.
fn script(conn: u64) -> Vec<Op> {
    let key = |r: u64| hash_with_seed(conn * 10_000 + r % 90, 7);
    (0..180u64)
        .map(|i| match i % 10 {
            0..=3 => Op::Insert { key: key(i), value: conn * 1_000_000 + i },
            4 => Op::Delete { key: key(i * 7) },
            5 => Op::InsertBatch(
                (0..16).map(|j| (key(i + j), conn * 1_000_000 + i * 100 + j)).collect(),
            ),
            6 => Op::LookupBatch((0..24).map(|j| key(i * 3 + j)).collect()),
            7 => Op::Flush,
            _ => Op::Lookup { key: key(i * 5) },
        })
        .collect()
}

fn run_scripts<D: Device + 'static>(server: &ClamdServer<D>) -> Vec<Vec<RespBody>> {
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3u64)
            .map(|conn| {
                scope.spawn(move || {
                    let mut client = ClamdClient::connect(addr).unwrap();
                    script(conn).into_iter().map(|op| client.call(op).unwrap()).collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// The sharded fast-path server answers every connection with exactly
/// the byte-identical response stream of the single-gather,
/// coarse-locked baseline.
#[test]
fn sharded_server_matches_coarse_single_gather_baseline_over_tcp() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        stripes: STRIPES,
        flash_bytes: 16 << 20,
        dram_bytes: 4 << 20,
        batcher: BatcherConfig { shards: 1, ..BatcherConfig::default() },
    };
    let baseline_store = boot_sim(&config).unwrap();
    baseline_store.set_coarse_locks(true);
    let baseline = ClamdServer::start(baseline_store, Vec::new(), config).unwrap();
    let sharded = ephemeral_sim_server_sharded(STRIPES, STRIPES, 16 << 20, 4 << 20).unwrap();
    assert_eq!(sharded.num_shards(), STRIPES);

    let base_streams = run_scripts(&baseline);
    let shard_streams = run_scripts(&sharded);
    for (conn, (b, s)) in base_streams.iter().zip(shard_streams.iter()).enumerate() {
        assert_eq!(b.len(), s.len(), "conn {conn}");
        for (i, (bb, ss)) in b.iter().zip(s.iter()).enumerate() {
            assert_eq!(bb, ss, "conn {conn} response {i}");
        }
    }
    // Same work, counted identically, whichever engine did it.
    let (bs, ss) = (baseline.stats(), sharded.stats());
    assert_eq!(bs.inserts, ss.inserts);
    assert_eq!(bs.lookups, ss.lookups);
    assert_eq!(bs.lookup_hits, ss.lookup_hits);
    assert_eq!(bs.lookup_misses, ss.lookup_misses);
    assert_eq!(bs.deletes, ss.deletes);
    assert_eq!(bs.flushes, ss.flushes);
    // Only the sharded server's store ever took the epoch-validated path.
    assert_eq!(baseline.clam_stats().fast_lookups, 0);
    assert!(sharded.clam_stats().fast_lookups > 0, "{:?}", sharded.stats());
}

/// Hammering one stripe with inserts must not starve lookups on the
/// other stripes: with per-stripe shards the readers' p99 stays bounded
/// (the bound is liveness-grade generous — the point is that readers
/// are not serialized behind the writer's stripe).
#[test]
fn insert_hammer_on_one_stripe_does_not_starve_reads_on_others() {
    let server = ephemeral_sim_server_sharded(STRIPES, STRIPES, 32 << 20, 8 << 20).unwrap();
    let addr = server.local_addr();
    let stripe_of = |key: u64| (hash_with_seed(key, STRIPE_SEED) % STRIPES as u64) as usize;

    // Preload read targets on stripes 1..4 only.
    let read_keys: Vec<u64> = (0..).filter(|&k| stripe_of(k) != 0).take(2_000).collect();
    let mut loader = ClamdClient::connect(addr).unwrap();
    loader.insert_batch(read_keys.iter().map(|&k| (k, k + 1)).collect()).unwrap();

    let p99 = std::thread::scope(|scope| {
        // Hammer stripe 0 with inserts for the whole measurement window.
        let hammer = scope.spawn(move || {
            let mut client = ClamdClient::connect(addr).unwrap();
            let keys: Vec<u64> = (1 << 32..).filter(|&k| stripe_of(k) == 0).take(512).collect();
            for i in 0..6_000u64 {
                let key = keys[(i % keys.len() as u64) as usize];
                client.insert(key, i).unwrap();
            }
        });
        let readers: Vec<_> = (0..2)
            .map(|r| {
                let read_keys = &read_keys;
                scope.spawn(move || {
                    let mut client = ClamdClient::connect(addr).unwrap();
                    let mut lat = Vec::with_capacity(2_000);
                    for i in 0..2_000usize {
                        let key = read_keys[(i * 7 + r * 13) % read_keys.len()];
                        let start = Instant::now();
                        assert_eq!(client.lookup(key).unwrap(), Some(key + 1));
                        lat.push(start.elapsed());
                    }
                    lat
                })
            })
            .collect();
        let mut lat: Vec<Duration> = readers.into_iter().flat_map(|h| h.join().unwrap()).collect();
        hammer.join().unwrap();
        lat.sort_unstable();
        lat[lat.len() * 99 / 100]
    });
    assert!(p99 < Duration::from_millis(250), "reader p99 {p99:?} under insert hammer");

    // The hammer really was confined to one shard's ledger.
    let per_shard = server.per_shard_stats();
    let hammered: Vec<usize> =
        (0..per_shard.len()).filter(|&i| per_shard[i].inserts >= 6_000).collect();
    assert_eq!(hammered.len(), 1, "exactly one shard absorbed the hammer: {per_shard:?}");
}
