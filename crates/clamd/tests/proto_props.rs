//! Property tests for the `clamd` wire protocol: every frame round-trips,
//! and no input — truncated, oversized, bit-flipped or outright random —
//! ever panics the decoder or escapes without a structured error.

use proptest::collection::vec;
use proptest::prelude::*;

use clamd::proto::{
    decode_request, decode_response, encode_request, encode_response, ErrorCode, Op, Request,
    RespBody, Response, StatsFields, WireError, HEADER_LEN, MAX_BATCH_OPS, MAX_PAYLOAD,
};

/// Builds one of the seven request ops from sampled raw material.
fn build_op(kind: u8, key: u64, value: u64, pairs: &[(u64, u64)], keys: &[u64]) -> Op {
    match kind % 7 {
        0 => Op::Insert { key, value },
        1 => Op::Lookup { key },
        2 => Op::Delete { key },
        3 => Op::Flush,
        4 => Op::Stats,
        5 => Op::InsertBatch(pairs.to_vec()),
        _ => Op::LookupBatch(keys.to_vec()),
    }
}

/// Builds one of the eight response bodies from sampled raw material.
fn build_body(
    kind: u8,
    value: u64,
    found: bool,
    count: u32,
    values: &[(bool, u64)],
    text_bytes: &[u8],
) -> RespBody {
    // Printable ASCII keeps the sampled text valid UTF-8.
    let text: String = text_bytes.iter().map(|b| char::from(b'a' + b % 26)).collect();
    match kind % 8 {
        0 => RespBody::Inserted,
        1 => RespBody::Value { found, value: if found { value } else { 0 } },
        2 => RespBody::Deleted,
        3 => RespBody::Flushed,
        4 => RespBody::Stats {
            fields: StatsFields {
                inserts: value,
                lookups: value.rotate_left(7),
                batches: u64::from(count),
                bypass_hits: value.rotate_left(13),
                shards: u64::from(count % 17),
                shard_inflight: value.rotate_left(29),
                table_write_acquisitions: value.rotate_left(37),
                table_write_contended: value.rotate_left(41),
                table_lock_high_water: u64::from(count % 31),
                ..Default::default()
            },
            text,
        },
        5 => RespBody::InsertedBatch { count },
        6 => RespBody::Values(values.to_vec()),
        _ => RespBody::Error {
            code: ErrorCode::from_u16(1 + (count % 7 + 1) as u16 % 7)
                .unwrap_or(ErrorCode::Internal),
            message: text,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every op — scalar and batch frames alike — survives an
    /// encode/decode round trip, consuming exactly its own bytes even
    /// with a following frame concatenated.
    #[test]
    fn requests_round_trip(
        kind in 0u8..7,
        id in any::<u64>(),
        key in any::<u64>(),
        value in any::<u64>(),
        pairs in vec((any::<u64>(), any::<u64>()), 0..40),
        keys in vec(any::<u64>(), 0..40),
    ) {
        let request = Request { id, op: build_op(kind, key, value, &pairs, &keys) };
        let mut buf = Vec::new();
        encode_request(&request, &mut buf);
        let frame_len = buf.len();
        // Concatenate a second frame: the decoder must stop at the first.
        encode_request(&Request { id: id.wrapping_add(1), op: Op::Flush }, &mut buf);
        let (decoded, consumed) = decode_request(&buf).unwrap().unwrap();
        prop_assert_eq!(consumed, frame_len);
        prop_assert_eq!(decoded, request);
        // And the second frame decodes from the remainder.
        let (second, rest) = decode_request(&buf[consumed..]).unwrap().unwrap();
        prop_assert_eq!(second.id, id.wrapping_add(1));
        prop_assert_eq!(consumed + rest, buf.len());
    }

    /// Every response body survives a round trip.
    #[test]
    fn responses_round_trip(
        kind in 0u8..8,
        id in any::<u64>(),
        value in any::<u64>(),
        found in any::<bool>(),
        count in 0u32..100_000,
        values in vec((any::<bool>(), any::<u64>()), 0..40),
        text_bytes in vec(any::<u8>(), 0..60),
    ) {
        let response =
            Response { id, body: build_body(kind, value, found, count, &values, &text_bytes) };
        let mut buf = Vec::new();
        encode_response(&response, &mut buf);
        let (decoded, consumed) = decode_response(&buf).unwrap().unwrap();
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(decoded, response);
    }

    /// Any strict prefix of a valid frame asks for more bytes — never an
    /// error, never a panic, never a truncated parse.
    #[test]
    fn truncated_frames_return_none(
        kind in 0u8..7,
        key in any::<u64>(),
        pairs in vec((any::<u64>(), any::<u64>()), 0..20),
        keys in vec(any::<u64>(), 0..20),
        cut_seed in any::<u64>(),
    ) {
        let request = Request { id: 9, op: build_op(kind, key, key, &pairs, &keys) };
        let mut buf = Vec::new();
        encode_request(&request, &mut buf);
        let cut = (cut_seed % buf.len() as u64) as usize;
        prop_assert_eq!(decode_request(&buf[..cut]).unwrap(), None);
        prop_assert_eq!(decode_response(&buf[..cut.min(HEADER_LEN - 1)]).unwrap(), None);
    }

    /// Arbitrary bytes never panic either decoder; whatever they return
    /// is a clean `Ok`/`Err`, and any successful parse consumed no more
    /// than the input.
    #[test]
    fn random_bytes_never_panic(bytes in vec(any::<u8>(), 0..160)) {
        if let Ok(Some((_, consumed))) = decode_request(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
        if let Ok(Some((_, consumed))) = decode_response(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
    }

    /// Corrupting any single header byte of a valid frame yields either a
    /// structured error, a request for more bytes (length fields grew) or
    /// a different-but-valid parse (id bytes) — never a panic. Magic,
    /// version and reserved corruption must be rejected outright.
    #[test]
    fn header_corruption_is_structured(
        kind in 0u8..7,
        key in any::<u64>(),
        pairs in vec((any::<u64>(), any::<u64>()), 0..10),
        keys in vec(any::<u64>(), 0..10),
        byte in 0usize..HEADER_LEN,
        flip in 1u8..=255,
    ) {
        let request = Request { id: 5, op: build_op(kind, key, key, &pairs, &keys) };
        let mut buf = Vec::new();
        encode_request(&request, &mut buf);
        buf[byte] ^= flip;
        let result = decode_request(&buf);
        match byte {
            0..=3 => prop_assert!(matches!(result, Err(WireError::BadMagic(_)))),
            4 => prop_assert!(matches!(result, Err(WireError::BadVersion(_)))),
            6 | 7 => prop_assert!(
                matches!(result, Err(WireError::Corrupt(_))),
                "reserved bytes must be zero: {:?}", result
            ),
            _ => { let _ = result; } // opcode/id/len: any clean outcome is fine
        }
    }

    /// A payload-length field inflated beyond the limit is rejected as
    /// Oversized before any allocation; a batch count beyond the op limit
    /// is rejected as TooManyOps.
    #[test]
    fn oversized_and_overcounted_frames_are_rejected(
        extra in 1usize..1_000_000,
        count_over in 1u32..1_000_000,
    ) {
        let mut buf = Vec::new();
        encode_request(&Request { id: 1, op: Op::LookupBatch(vec![1, 2]) }, &mut buf);
        let mut oversized = buf.clone();
        let bad_len = (MAX_PAYLOAD + extra) as u32;
        oversized[16..20].copy_from_slice(&bad_len.to_le_bytes());
        prop_assert!(matches!(decode_request(&oversized), Err(WireError::Oversized(_))));

        let mut overcounted = buf;
        let bad_count = MAX_BATCH_OPS as u32 + count_over;
        overcounted[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&bad_count.to_le_bytes());
        prop_assert!(matches!(decode_request(&overcounted), Err(WireError::TooManyOps(_))));
    }

    /// A minor-version-1 STATS frame (15-word field vector) still
    /// decodes, zero-filling the v2 and v3 fields — the count word
    /// doubles as the field-vector version.
    #[test]
    fn legacy_v1_stats_frames_decode(
        id in any::<u64>(),
        inserts in any::<u64>(),
        wire_errors in any::<u64>(),
        text_bytes in vec(any::<u8>(), 0..40),
    ) {
        let text: String = text_bytes.iter().map(|b| char::from(b'a' + b % 26)).collect();
        let fields = StatsFields { inserts, wire_errors, ..Default::default() };
        let mut buf = Vec::new();
        let body = RespBody::Stats { fields, text: text.clone() };
        encode_response(&Response { id, body }, &mut buf);
        // Surgically rewrite the current frame into its v1 form: drop
        // the trailing (zero) field words, rewrite the count word and
        // the header's payload length.
        let words_start = HEADER_LEN + 4;
        let v1 = StatsFields::V1_COUNT;
        buf.drain(words_start + 8 * v1..words_start + 8 * StatsFields::COUNT);
        buf[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&(v1 as u32).to_le_bytes());
        let payload_len = (buf.len() - HEADER_LEN) as u32;
        buf[16..20].copy_from_slice(&payload_len.to_le_bytes());
        let (decoded, consumed) = decode_response(&buf).unwrap().unwrap();
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(decoded, Response { id, body: RespBody::Stats { fields, text } });
    }

    /// A minor-version-2 STATS frame (18-word field vector, no
    /// table-write-lock ledger) still decodes, zero-filling the three v3
    /// fields, with every v2 field — including the v2 additions
    /// (`bypass_hits`, `shards`, `shard_inflight`) — intact.
    #[test]
    fn legacy_v2_stats_frames_decode(
        id in any::<u64>(),
        inserts in any::<u64>(),
        bypass_hits in any::<u64>(),
        shards in any::<u64>(),
        shard_inflight in any::<u64>(),
        text_bytes in vec(any::<u8>(), 0..40),
    ) {
        let text: String = text_bytes.iter().map(|b| char::from(b'a' + b % 26)).collect();
        let fields =
            StatsFields { inserts, bypass_hits, shards, shard_inflight, ..Default::default() };
        let mut buf = Vec::new();
        let body = RespBody::Stats { fields, text: text.clone() };
        encode_response(&Response { id, body }, &mut buf);
        // Rewrite the current frame into its v2 form: drop the three
        // (zero) table-lock words, rewrite the count word and the
        // header's payload length.
        let words_start = HEADER_LEN + 4;
        let v2 = StatsFields::V2_COUNT;
        buf.drain(words_start + 8 * v2..words_start + 8 * StatsFields::COUNT);
        buf[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&(v2 as u32).to_le_bytes());
        let payload_len = (buf.len() - HEADER_LEN) as u32;
        buf[16..20].copy_from_slice(&payload_len.to_le_bytes());
        let (decoded, consumed) = decode_response(&buf).unwrap().unwrap();
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(decoded, Response { id, body: RespBody::Stats { fields, text } });
    }

    /// A batch whose count field disagrees with its payload length is
    /// corrupt, whichever direction the disagreement goes.
    #[test]
    fn batch_count_payload_disagreement_is_corrupt(
        keys in vec(any::<u64>(), 1..20),
        delta in 1u32..8,
        shrink in any::<bool>(),
    ) {
        let count = keys.len() as u32;
        let mut buf = Vec::new();
        encode_request(&Request { id: 1, op: Op::LookupBatch(keys) }, &mut buf);
        let bad = if shrink { count.saturating_sub(delta.min(count)) } else { count + delta };
        prop_assume!(bad != count);
        buf[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&bad.to_le_bytes());
        prop_assert!(matches!(decode_request(&buf), Err(WireError::Corrupt(_))));
    }
}
