//! Loopback integration tests: a real `clamd` server on an ephemeral
//! port, real TCP clients, pipelining, batch frames, concurrent
//! connections, and a full flush → shutdown → recover-from-flash-image
//! cycle over the wire.

use std::time::Duration;

use clamd::batcher::BatcherConfig;
use clamd::client::ClamdClient;
use clamd::loadgen::{key_for, value_for};
use clamd::proto::{ErrorCode, Op, RespBody};
use clamd::server::{boot_file, ephemeral_sim_server, ClamdServer, ServerConfig};

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("clamd-test-{}-{}", std::process::id(), name));
    p
}

fn file_server_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        stripes: 2,
        flash_bytes: 16 << 20,
        dram_bytes: 4 << 20,
        batcher: BatcherConfig::default(),
    }
}

#[test]
fn scalar_ops_round_trip_over_tcp() {
    let server = ephemeral_sim_server(2, 16 << 20, 4 << 20).unwrap();
    let mut client = ClamdClient::connect(server.local_addr()).unwrap();
    client.insert(42, 4200).unwrap();
    assert_eq!(client.lookup(42).unwrap(), Some(4200));
    assert_eq!(client.lookup(43).unwrap(), None);
    client.insert(42, 4300).unwrap();
    assert_eq!(client.lookup(42).unwrap(), Some(4300), "update wins");
    client.delete(42).unwrap();
    assert_eq!(client.lookup(42).unwrap(), None);
    client.flush().unwrap();
    let (fields, text) = client.stats().unwrap();
    assert_eq!(fields.inserts, 2);
    assert_eq!(fields.deletes, 1);
    assert_eq!(fields.flushes, 1);
    assert_eq!(fields.lookup_hits, 2);
    assert_eq!(fields.lookup_misses, 2);
    assert!(text.contains("served:") && text.contains("store:"), "{text}");
}

#[test]
fn batch_frames_round_trip_over_tcp() {
    let server = ephemeral_sim_server(2, 16 << 20, 4 << 20).unwrap();
    let mut client = ClamdClient::connect(server.local_addr()).unwrap();
    let pairs: Vec<(u64, u64)> = (0..5_000).map(|i| (key_for(i + 1), value_for(i + 1))).collect();
    assert_eq!(client.insert_batch(pairs.clone()).unwrap(), 5_000);
    let keys: Vec<u64> = (0..1_000)
        .map(|i| if i % 2 == 0 { key_for(i + 1) } else { key_for(1 << 44 | i) })
        .collect();
    let values = client.lookup_batch(keys.clone()).unwrap();
    for (i, value) in values.iter().enumerate() {
        if i % 2 == 0 {
            assert_eq!(*value, Some(value_for(i as u64 + 1)), "index {i}");
        } else {
            assert_eq!(*value, None, "index {i}");
        }
    }
    let (fields, _) = client.stats().unwrap();
    assert_eq!(fields.inserts, 5_000);
    assert_eq!(fields.lookups, 1_000);
    assert_eq!(fields.lookup_hits, 500);
    assert_eq!(fields.lookup_misses, 500);
}

#[test]
fn pipelined_requests_answer_in_order() {
    let server = ephemeral_sim_server(2, 16 << 20, 4 << 20).unwrap();
    let mut client = ClamdClient::connect(server.local_addr()).unwrap();
    let mut expected = Vec::new();
    for i in 0..400u64 {
        let id = client.send(Op::Insert { key: key_for(i + 1), value: value_for(i + 1) }).unwrap();
        expected.push(id);
    }
    for i in 0..400u64 {
        let id = client.send(Op::Lookup { key: key_for(i + 1) }).unwrap();
        expected.push(id);
    }
    for (n, want_id) in expected.into_iter().enumerate() {
        let response = client.recv().unwrap();
        assert_eq!(response.id, want_id, "response {n} out of order");
        if n < 400 {
            assert_eq!(response.body, RespBody::Inserted);
        } else {
            let i = n as u64 - 400;
            assert_eq!(
                response.body,
                RespBody::Value { found: true, value: value_for(i + 1) },
                "lookup {i}"
            );
        }
    }
    // The pipelined burst coalesced: far fewer ring admissions than ops.
    let stats = server.stats();
    assert!(stats.batches > 0);
    assert!(stats.insert_admissions < 400, "{stats}");
}

#[test]
fn concurrent_connections_group_commit_together() {
    let server = ephemeral_sim_server(2, 16 << 20, 4 << 20).unwrap();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for c in 0..6u64 {
            scope.spawn(move || {
                let mut client = ClamdClient::connect(addr).unwrap();
                for i in 0..300u64 {
                    let id = 1 + c * 1_000_000 + i;
                    client.insert(key_for(id), value_for(id)).unwrap();
                }
                for i in (0..300u64).step_by(7) {
                    let id = 1 + c * 1_000_000 + i;
                    assert_eq!(client.lookup(key_for(id)).unwrap(), Some(value_for(id)));
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.inserts, 1_800);
    assert_eq!(stats.connections_opened, 6);
    assert_eq!(stats.wire_errors, 0);
}

#[test]
fn protocol_violation_closes_only_the_offending_connection() {
    use std::io::Write;
    let server = ephemeral_sim_server(2, 16 << 20, 4 << 20).unwrap();
    let addr = server.local_addr();
    let mut good = ClamdClient::connect(addr).unwrap();
    good.insert(7, 70).unwrap();

    let mut bad = std::net::TcpStream::connect(addr).unwrap();
    bad.write_all(&[0xde; 64]).unwrap();
    bad.flush().unwrap();
    // The server answers the violation with one structured error frame
    // and then closes; the well-behaved connection keeps working.
    let mut deadline = 100;
    while server.stats().wire_errors == 0 && deadline > 0 {
        std::thread::sleep(Duration::from_millis(10));
        deadline -= 1;
    }
    assert_eq!(server.stats().wire_errors, 1);
    assert_eq!(good.lookup(7).unwrap(), Some(70));
}

#[test]
fn server_error_frames_surface_as_client_errors() {
    let server = ephemeral_sim_server(2, 16 << 20, 4 << 20).unwrap();
    let mut client = ClamdClient::connect(server.local_addr()).unwrap();
    // A client that speaks the protocol but violates framing gets the
    // structured code back before the connection closes.
    client.send(Op::Insert { key: 1, value: 1 }).unwrap();
    let first = client.recv().unwrap();
    assert_eq!(first.body, RespBody::Inserted);
    // Force a wire error by sending a corrupt frame through the raw op
    // path: an oversized LookupBatch is rejected server-side.
    let huge = vec![0u64; clamd::proto::MAX_BATCH_OPS + 1];
    let err = client.call(Op::LookupBatch(huge));
    match err {
        Err(clamd::client::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::TooManyOps);
        }
        other => panic!("expected a server error, got {other:?}"),
    }
}

#[test]
fn flush_shutdown_recover_cycle_preserves_acknowledged_inserts() {
    let path = temp_path("recovery-image");
    let _ = std::fs::remove_file(&path);
    let config = file_server_config();

    // Boot fresh, load over the wire, flush, shut down cleanly.
    let addr;
    {
        let (store, reports) = boot_file(&path, &config, 4).unwrap();
        assert!(reports.is_empty(), "fresh image must not report recovery");
        let mut server = ClamdServer::start(store, reports, config.clone()).unwrap();
        addr = server.local_addr();
        let mut client = ClamdClient::connect(addr).unwrap();
        let pairs: Vec<(u64, u64)> = (1..=4_000).map(|id| (key_for(id), value_for(id))).collect();
        assert_eq!(client.insert_batch(pairs).unwrap(), 4_000);
        client.flush().unwrap();
        server.shutdown();
    }

    // Reboot from the image alone: every stripe recovers, reports are
    // surfaced, and every acknowledged insert is served over the wire.
    {
        let (store, reports) = boot_file(&path, &config, 4).unwrap();
        assert_eq!(reports.len(), config.stripes, "one report per stripe");
        for report in &reports {
            assert!(report.accepted > 0, "{report}");
            assert_eq!(report.torn, 0, "{report}");
        }
        let server = ClamdServer::start(store, reports.clone(), config.clone()).unwrap();
        assert_eq!(server.recovery_reports().len(), config.stripes);
        let mut client = ClamdClient::connect(server.local_addr()).unwrap();
        for id in (1..=4_000u64).step_by(13) {
            assert_eq!(client.lookup(key_for(id)).unwrap(), Some(value_for(id)), "id {id}");
        }
        // STATS over the wire mentions the recovery.
        let (_, text) = client.stats().unwrap();
        assert!(text.contains("recovery"), "{text}");
    }
    let _ = std::fs::remove_file(&path);
}
