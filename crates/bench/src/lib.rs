//! # bench — the experiment harness behind every figure and table
//!
//! Each `src/bin/*.rs` binary reproduces one paper artifact (the
//! binary-to-figure mapping lives in EXPERIMENTS.md at the repository
//! root); this library provides what they share:
//!
//! * **Standard constructions** — [`standard_config`], [`build_clam`] /
//!   [`build_clam_with`] (returning the medium-erasing [`AnyClam`]),
//!   [`build_bdb`] with FTL preconditioning, and the [`Ablation`]
//!   variants of §7.3.1.
//! * **Workload drivers** — [`run_mixed_workload`] /
//!   [`run_mixed_workload_continuing`] over the [`KvBench`] trait, with a
//!   controllable lookup fraction and lookup-success rate, and
//!   [`bulk_load`] for warm-up fills through the batched insert pipeline
//!   ([`bufferhash::Clam::insert_batch`]).
//! * **Reporting helpers** — fixed-width tables ([`print_header`],
//!   [`print_row`]), CDFs ([`print_cdf`]) and millisecond formatting
//!   ([`ms`]).
//!
//! ## Scale
//!
//! Experiments default to **1/64** of the paper's 32 GB flash / 4 GB
//! DRAM prototype ([`FLASH_BYTES`] / [`DRAM_BYTES`]), preserving the
//! paper's flash : buffer : Bloom : incarnation ratios. Warm-up phases
//! are batched (cheap); measured phases stay per-op so latency
//! distributions remain comparable with the paper's. The
//! `batch_throughput` binary compares the two pipelines directly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use baseline::{BdbConfig, BdbHashIndex};
use bufferhash::{hash_with_seed, Clam, ClamConfig, FilterMode};
use flashsim::{LatencyRecorder, MagneticDisk, SimDuration, Ssd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default scaled-down flash size used by the simulated experiments.
///
/// The paper's prototype used 32 GB of flash and 4 GB of DRAM; the
/// experiments here keep the same *ratios* (flash : buffers : Bloom
/// filters : incarnations-per-table) at 1/64 the size — 512 MiB of
/// flash, 64 MiB of DRAM — so every figure regenerates in seconds.
/// The harness ran at 1/512 before the batched insert pipeline landed
/// and at 1/128 before lookups were batched too; with both the write
/// path ([`bufferhash::Clam::insert_batch`] behind [`bulk_load`]) and
/// the read path ([`bufferhash::Clam::lookup_batch`] on the completion
/// ring) amortized, the 2x larger index stays cheap to populate and
/// probe. Absolute sizes can be raised freely.
pub const FLASH_BYTES: u64 = 512 << 20;
/// Default scaled-down DRAM budget (see [`FLASH_BYTES`]).
pub const DRAM_BYTES: u64 = 64 << 20;

/// Which storage medium a CLAM or baseline index runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Medium {
    /// Intel X18-M class SSD.
    IntelSsd,
    /// Transcend TS32GSSD25 class SSD.
    TranscendSsd,
    /// Hitachi 7K80 class magnetic disk.
    Disk,
}

impl Medium {
    /// Human-readable name used in output tables.
    pub fn label(&self) -> &'static str {
        match self {
            Medium::IntelSsd => "Intel SSD",
            Medium::TranscendSsd => "Transcend SSD",
            Medium::Disk => "Disk",
        }
    }
}

/// A CLAM on any of the three media, unified behind one type so the
/// experiment drivers can iterate over media.
pub enum AnyClam {
    /// CLAM on an Intel-class SSD.
    Intel(Clam<Ssd>),
    /// CLAM on a Transcend-class SSD.
    Transcend(Clam<Ssd>),
    /// CLAM on a magnetic disk.
    Disk(Clam<MagneticDisk>),
}

impl AnyClam {
    /// Inserts a key, returning the simulated latency.
    pub fn insert(&mut self, key: u64, value: u64) -> SimDuration {
        match self {
            AnyClam::Intel(c) | AnyClam::Transcend(c) => {
                c.insert(key, value).expect("insert").latency
            }
            AnyClam::Disk(c) => c.insert(key, value).expect("insert").latency,
        }
    }

    /// Inserts a batch of key/value pairs through the batched CLAM
    /// pipeline, returning the total simulated latency.
    pub fn insert_batch(&mut self, ops: &[(u64, u64)]) -> SimDuration {
        match self {
            AnyClam::Intel(c) | AnyClam::Transcend(c) => {
                c.insert_batch(ops).expect("insert_batch").latency
            }
            AnyClam::Disk(c) => c.insert_batch(ops).expect("insert_batch").latency,
        }
    }

    /// Looks up a batch of keys through the queued CLAM read pipeline,
    /// returning the values in input order and the batch's
    /// makespan-accounted simulated latency (probe waves overlap on the
    /// device's queue lanes).
    pub fn lookup_batch(&mut self, keys: &[u64]) -> (Vec<Option<u64>>, SimDuration) {
        fn collect(batch: bufferhash::BatchLookupOutcome) -> (Vec<Option<u64>>, SimDuration) {
            let latency = batch.latency;
            (batch.values(), latency)
        }
        match self {
            AnyClam::Intel(c) | AnyClam::Transcend(c) => {
                collect(c.lookup_batch(keys).expect("lookup_batch"))
            }
            AnyClam::Disk(c) => collect(c.lookup_batch(keys).expect("lookup_batch")),
        }
    }

    /// Looks up a key, returning the value and the simulated latency.
    pub fn lookup(&mut self, key: u64) -> (Option<u64>, SimDuration) {
        match self {
            AnyClam::Intel(c) | AnyClam::Transcend(c) => {
                let out = c.lookup(key).expect("lookup");
                (out.value, out.latency)
            }
            AnyClam::Disk(c) => {
                let out = c.lookup(key).expect("lookup");
                (out.value, out.latency)
            }
        }
    }

    /// Snapshot of the CLAM statistics (owned; the per-table lock ledger
    /// is merged in at snapshot time).
    pub fn stats(&self) -> bufferhash::ClamStats {
        match self {
            AnyClam::Intel(c) | AnyClam::Transcend(c) => c.stats(),
            AnyClam::Disk(c) => c.stats(),
        }
    }

    /// Clears statistics.
    pub fn reset_stats(&mut self) {
        match self {
            AnyClam::Intel(c) | AnyClam::Transcend(c) => c.reset_stats(),
            AnyClam::Disk(c) => c.reset_stats(),
        }
    }
}

/// Standard CLAM configuration used across the experiments (32 KiB buffers,
/// FIFO eviction, bit-sliced filters).
pub fn standard_config(flash: u64, dram: u64) -> ClamConfig {
    ClamConfig::small_test(flash, dram).expect("valid standard config")
}

/// Builds a CLAM on the given medium with the standard configuration.
pub fn build_clam(medium: Medium, flash: u64, dram: u64) -> AnyClam {
    build_clam_with(medium, standard_config(flash, dram))
}

/// Builds a CLAM on the given medium with an explicit configuration.
pub fn build_clam_with(medium: Medium, config: ClamConfig) -> AnyClam {
    let flash = config.flash_capacity;
    match medium {
        Medium::IntelSsd => {
            AnyClam::Intel(Clam::new(Ssd::intel(flash).expect("ssd"), config).expect("clam"))
        }
        Medium::TranscendSsd => AnyClam::Transcend(
            Clam::new(Ssd::transcend(flash).expect("ssd"), config).expect("clam"),
        ),
        Medium::Disk => {
            AnyClam::Disk(Clam::new(MagneticDisk::new(flash).expect("disk"), config).expect("clam"))
        }
    }
}

/// A configuration variant for the §7.3.1 ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// The full design.
    Full,
    /// Membership filters disabled: lookups probe every incarnation.
    NoBloomFilters,
    /// Plain per-incarnation filters instead of bit-sliced storage.
    NoBitSlicing,
    /// Buffering disabled: every insert flushes straight to flash.
    NoBuffering,
}

impl Ablation {
    /// Label used in output.
    pub fn label(&self) -> &'static str {
        match self {
            Ablation::Full => "full BufferHash",
            Ablation::NoBloomFilters => "without Bloom filters",
            Ablation::NoBitSlicing => "without bit-slicing",
            Ablation::NoBuffering => "without buffering",
        }
    }

    /// Applies the ablation to a configuration.
    pub fn apply(&self, mut config: ClamConfig) -> ClamConfig {
        match self {
            Ablation::Full => {}
            Ablation::NoBloomFilters => config.filter_mode = FilterMode::Disabled,
            Ablation::NoBitSlicing => config.filter_mode = FilterMode::PerIncarnation,
            Ablation::NoBuffering => config.enable_buffering = false,
        }
        config
    }
}

/// A BDB-style index on the given medium, unified for the drivers.
pub enum AnyBdb {
    /// Index on an SSD.
    Ssd(BdbHashIndex<Ssd>),
    /// Index on a magnetic disk.
    Disk(BdbHashIndex<MagneticDisk>),
}

impl AnyBdb {
    /// Inserts a key, returning the simulated latency.
    pub fn insert(&mut self, key: u64, value: u64) -> SimDuration {
        match self {
            AnyBdb::Ssd(i) => i.insert(key, value).expect("insert"),
            AnyBdb::Disk(i) => i.insert(key, value).expect("insert"),
        }
    }

    /// Looks up a key, returning the value and the simulated latency.
    pub fn lookup(&mut self, key: u64) -> (Option<u64>, SimDuration) {
        match self {
            AnyBdb::Ssd(i) => i.lookup(key).expect("lookup"),
            AnyBdb::Disk(i) => i.lookup(key).expect("lookup"),
        }
    }
}

/// Builds a BDB-style index on the given medium. The cache is sized like the
/// paper's BDB configuration: large enough to be useful, far smaller than
/// the index. SSDs are preconditioned (every logical page written once, in
/// random order) so the FTL starts from the steady state a long-lived index
/// would be in — this is what exposes the garbage-collection penalty the
/// paper observes for BDB on SSDs (§7.2.2).
pub fn build_bdb(medium: Medium, capacity: u64) -> AnyBdb {
    let config = BdbConfig { primary_fraction: 0.8, cache_bytes: (capacity / 32) as usize };
    match medium {
        Medium::IntelSsd => {
            let mut ssd = Ssd::intel(capacity).expect("ssd");
            ssd.precondition(1.0);
            AnyBdb::Ssd(BdbHashIndex::new(ssd, config).expect("bdb"))
        }
        Medium::TranscendSsd => {
            let mut ssd = Ssd::transcend(capacity).expect("ssd");
            ssd.precondition(1.0);
            AnyBdb::Ssd(BdbHashIndex::new(ssd, config).expect("bdb"))
        }
        Medium::Disk => AnyBdb::Disk(
            BdbHashIndex::new(MagneticDisk::new(capacity).expect("disk"), config).expect("bdb"),
        ),
    }
}

/// Latency recorders produced by a mixed workload run.
#[derive(Debug, Default, Clone)]
pub struct WorkloadResult {
    /// Insert latencies.
    pub inserts: LatencyRecorder,
    /// Lookup latencies.
    pub lookups: LatencyRecorder,
    /// Observed lookup hits.
    pub hits: u64,
    /// Observed lookup misses.
    pub misses: u64,
}

impl WorkloadResult {
    /// Mean latency across all operations.
    pub fn mean_per_op(&self) -> SimDuration {
        let total = self.inserts.total() + self.lookups.total();
        let n = (self.inserts.len() + self.lookups.len()) as u64;
        if n == 0 {
            SimDuration::ZERO
        } else {
            total / n
        }
    }

    /// Observed lookup success rate.
    pub fn observed_lsr(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Key used by the workload drivers (the i-th inserted key).
pub fn workload_key(i: u64) -> u64 {
    hash_with_seed(i, 0x5eed_5eed)
}

/// A key-value store that can be driven by the workload runner.
pub trait KvBench {
    /// Inserts a key, returning the simulated latency.
    fn bench_insert(&mut self, key: u64, value: u64) -> SimDuration;
    /// Looks up a key, returning whether it hit and the simulated latency.
    fn bench_lookup(&mut self, key: u64) -> (bool, SimDuration);
}

impl KvBench for AnyClam {
    fn bench_insert(&mut self, key: u64, value: u64) -> SimDuration {
        self.insert(key, value)
    }
    fn bench_lookup(&mut self, key: u64) -> (bool, SimDuration) {
        let (v, l) = self.lookup(key);
        (v.is_some(), l)
    }
}

impl KvBench for AnyBdb {
    fn bench_insert(&mut self, key: u64, value: u64) -> SimDuration {
        self.insert(key, value)
    }
    fn bench_lookup(&mut self, key: u64) -> (bool, SimDuration) {
        let (v, l) = self.lookup(key);
        (v.is_some(), l)
    }
}

/// Batch size used by [`bulk_load`] warm-up phases.
pub const BULK_LOAD_BATCH: usize = 1024;

/// Loads keys `workload_key(start..start + n)` (value = key index) through
/// the batched insert pipeline, returning the total simulated latency.
///
/// This populates exactly the same state as the per-op warm-up loops the
/// harness used before batching landed (an insert-only
/// [`run_mixed_workload`] phase), but amortizes the per-op overhead so
/// figure warm-ups stay fast at 1/64 scale. Follow up with
/// [`run_mixed_workload_continuing`] (passing `start + n` as
/// `already_inserted`) for the measured phase.
pub fn bulk_load(clam: &mut AnyClam, start: u64, n: u64) -> SimDuration {
    let mut total = SimDuration::ZERO;
    let mut batch: Vec<(u64, u64)> = Vec::with_capacity(BULK_LOAD_BATCH);
    for i in start..start + n {
        batch.push((workload_key(i), i));
        if batch.len() == BULK_LOAD_BATCH {
            total += clam.insert_batch(&batch);
            batch.clear();
        }
    }
    if !batch.is_empty() {
        total += clam.insert_batch(&batch);
    }
    total
}

/// Drives a mixed insert/lookup workload against a store.
///
/// * `lookup_fraction` — fraction of operations that are lookups;
/// * `target_lsr` — fraction of lookups aimed at keys that exist.
///
/// The driver mirrors the paper's synthetic workload (§7.2): keys are
/// random, lookups precede inserts for the same key stream, and the
/// workload is continuously backlogged. Keys are `workload_key(0..n)`; the
/// driver starts numbering at zero, so back-to-back calls on the same store
/// keep extending the same key space (see [`run_mixed_workload_continuing`]
/// to target keys loaded by an earlier warm-up phase).
pub fn run_mixed_workload<S: KvBench>(
    store: &mut S,
    operations: usize,
    lookup_fraction: f64,
    target_lsr: f64,
    seed: u64,
) -> WorkloadResult {
    run_mixed_workload_continuing(store, operations, lookup_fraction, target_lsr, seed, 0)
}

/// Like [`run_mixed_workload`], but aware that keys `workload_key(0..already_inserted)`
/// were loaded by an earlier phase: successful lookups draw from the whole
/// population and new inserts continue the numbering, so measured phases
/// after a warm-up exercise flash-resident keys the way the paper's
/// steady-state workloads do.
pub fn run_mixed_workload_continuing<S: KvBench>(
    store: &mut S,
    operations: usize,
    lookup_fraction: f64,
    target_lsr: f64,
    seed: u64,
    already_inserted: u64,
) -> WorkloadResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut result = WorkloadResult::default();
    let mut inserted: u64 = already_inserted;
    for op in 0..operations {
        let do_lookup = rng.gen_bool(lookup_fraction.clamp(0.0, 1.0)) && inserted > 0;
        if do_lookup {
            let hit_intended = rng.gen_bool(target_lsr.clamp(0.0, 1.0));
            let key = if hit_intended {
                workload_key(rng.gen_range(0..inserted))
            } else {
                hash_with_seed(op as u64, 0xdead_0000 + seed)
            };
            let (hit, lat) = store.bench_lookup(key);
            result.lookups.record(lat);
            if hit {
                result.hits += 1;
            } else {
                result.misses += 1;
            }
        } else {
            let key = workload_key(inserted);
            let lat = store.bench_insert(key, inserted);
            result.inserts.record(lat);
            inserted += 1;
        }
    }
    result
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> =
        cells.iter().zip(widths).map(|(c, w)| format!("{c:>width$}", width = w)).collect();
    println!("{}", line.join("  "));
}

/// Prints a header row followed by a separator.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(), widths);
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

/// Formats a simulated duration in milliseconds with three decimals.
pub fn ms(d: SimDuration) -> String {
    format!("{:.3}", d.as_millis_f64())
}

/// Head-and-tail quantile summary of a latency distribution: the numbers
/// a serving system reports per load level (p50 for the common case,
/// p99/p999 for the tail, max for the worst observed straggler).
///
/// Shared by the figure binaries (fig6/fig7 latency CDFs) and the `clamd`
/// load generator, so simulated and client-observed wall-clock latencies
/// are summarized identically. Wall-clock users store nanoseconds in the
/// recorder via [`SimDuration::from_nanos`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailSummary {
    /// Number of samples summarized.
    pub samples: usize,
    /// Median.
    pub p50: SimDuration,
    /// 90th percentile.
    pub p90: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// 99.9th percentile.
    pub p999: SimDuration,
    /// Largest sample.
    pub max: SimDuration,
}

impl TailSummary {
    /// Summarizes a recorder (all zeros when it is empty).
    pub fn from_recorder(recorder: &mut LatencyRecorder) -> Self {
        if recorder.is_empty() {
            return TailSummary {
                samples: 0,
                p50: SimDuration::ZERO,
                p90: SimDuration::ZERO,
                p99: SimDuration::ZERO,
                p999: SimDuration::ZERO,
                max: SimDuration::ZERO,
            };
        }
        TailSummary {
            samples: recorder.len(),
            p50: recorder.quantile(0.50),
            p90: recorder.quantile(0.90),
            p99: recorder.quantile(0.99),
            p999: recorder.quantile(0.999),
            max: recorder.max(),
        }
    }

    /// `true` when the distribution carries real spread: a non-zero p99
    /// at least as large as the median. A degenerate recorder (empty, or
    /// all-zero measurements from a too-coarse clock) fails this.
    pub fn is_nondegenerate(&self) -> bool {
        self.samples > 0 && self.p99 > SimDuration::ZERO && self.p99 >= self.p50
    }
}

impl std::fmt::Display for TailSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p50 {} | p90 {} | p99 {} | p999 {} | max {} ({} samples)",
            self.p50, self.p90, self.p99, self.p999, self.max, self.samples
        )
    }
}

/// Prints a CDF as `latency_ms fraction` pairs at log-spaced points.
pub fn print_cdf(label: &str, recorder: &mut LatencyRecorder, points: usize) {
    println!("# CDF: {label} ({} samples)", recorder.len());
    if recorder.is_empty() {
        return;
    }
    let lo = recorder.min().max(SimDuration::from_nanos(100));
    let hi = recorder.max();
    let pts = LatencyRecorder::log_spaced_points(lo, hi, points);
    for (p, f) in recorder.cdf(&pts) {
        println!("{:>12.4}  {:.4}", p.as_millis_f64(), f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_workload_hits_the_requested_mix() {
        let mut clam = build_clam(Medium::IntelSsd, 16 << 20, 4 << 20);
        let result = run_mixed_workload(&mut clam, 20_000, 0.5, 0.4, 1);
        let lookups = result.lookups.len() as f64;
        let total = (result.lookups.len() + result.inserts.len()) as f64;
        assert!((lookups / total - 0.5).abs() < 0.05);
        assert!((result.observed_lsr() - 0.4).abs() < 0.08, "lsr {}", result.observed_lsr());
    }

    #[test]
    fn bulk_load_matches_a_per_op_warm_up() {
        let mut per_op = build_clam(Medium::IntelSsd, 16 << 20, 4 << 20);
        let mut batched = build_clam(Medium::IntelSsd, 16 << 20, 4 << 20);
        run_mixed_workload(&mut per_op, 30_000, 0.0, 0.0, 1);
        bulk_load(&mut batched, 0, 30_000);
        for i in (0..30_000u64).step_by(997) {
            assert_eq!(per_op.lookup(workload_key(i)).0, Some(i), "key {i}");
            assert_eq!(batched.lookup(workload_key(i)).0, Some(i), "key {i}");
        }
        assert_eq!(per_op.stats().flushes, batched.stats().flushes);
        assert_eq!(batched.stats().batched_inserts, 30_000);
    }

    #[test]
    fn tail_summary_orders_quantiles() {
        let mut rec = LatencyRecorder::new();
        for i in 1..=1000u64 {
            rec.record(SimDuration::from_micros(i));
        }
        let tail = TailSummary::from_recorder(&mut rec);
        assert_eq!(tail.samples, 1000);
        assert!(tail.p50 <= tail.p90 && tail.p90 <= tail.p99);
        assert!(tail.p99 <= tail.p999 && tail.p999 <= tail.max);
        assert_eq!(tail.max, SimDuration::from_micros(1000));
        assert!(tail.is_nondegenerate());
        let text = tail.to_string();
        assert!(text.contains("p999") && text.contains("1000 samples"), "{text}");
        // Empty and all-zero recorders are degenerate, not panics.
        assert!(!TailSummary::from_recorder(&mut LatencyRecorder::new()).is_nondegenerate());
        let mut zeros = LatencyRecorder::new();
        zeros.record(SimDuration::ZERO);
        assert!(!TailSummary::from_recorder(&mut zeros).is_nondegenerate());
    }

    #[test]
    fn ablations_modify_the_config() {
        let cfg = standard_config(16 << 20, 4 << 20);
        assert_eq!(Ablation::NoBloomFilters.apply(cfg.clone()).filter_mode, FilterMode::Disabled);
        assert_eq!(
            Ablation::NoBitSlicing.apply(cfg.clone()).filter_mode,
            FilterMode::PerIncarnation
        );
        assert!(!Ablation::NoBuffering.apply(cfg.clone()).enable_buffering);
        assert_eq!(Ablation::Full.apply(cfg.clone()), cfg);
    }

    #[test]
    fn builders_produce_working_stores_on_every_medium() {
        for medium in [Medium::IntelSsd, Medium::TranscendSsd, Medium::Disk] {
            let mut clam = build_clam(medium, 8 << 20, 2 << 20);
            clam.insert(1, 2);
            assert_eq!(clam.lookup(1).0, Some(2));
            let mut bdb = build_bdb(medium, 8 << 20);
            bdb.insert(3, 4);
            assert_eq!(bdb.lookup(3).0, Some(4));
        }
    }

    #[test]
    fn clam_is_faster_than_bdb_on_the_same_medium() {
        let mut clam = build_clam(Medium::TranscendSsd, 16 << 20, 4 << 20);
        let mut bdb = build_bdb(Medium::TranscendSsd, 16 << 20);
        let clam_result = run_mixed_workload(&mut clam, 10_000, 0.5, 0.4, 2);
        let bdb_result = run_mixed_workload(&mut bdb, 10_000, 0.5, 0.4, 2);
        assert!(clam_result.mean_per_op() * 5 < bdb_result.mean_per_op());
    }
}
