//! Table 2: how many flash I/Os a lookup performs, and what each count
//! costs, at 0% and 40% lookup success rates.

use bench::{
    build_clam, bulk_load, print_header, print_row, run_mixed_workload_continuing, Medium,
};
use bufferhash::analysis::FlashCostModel;
use flashsim::DeviceProfile;

fn distribution(lsr: f64) -> Vec<f64> {
    let mut clam = build_clam(Medium::IntelSsd, bench::FLASH_BYTES, bench::DRAM_BYTES);
    // Warm up the table (batched) so most lookups that should hit go to flash.
    bulk_load(&mut clam, 0, 1_600_000);
    clam.reset_stats();
    run_mixed_workload_continuing(&mut clam, 40_000, 0.5, lsr, 8, 1_600_000);
    let stats = clam.stats();
    (0..4).map(|n| stats.lookup_read_fraction(n)).collect()
}

fn main() {
    println!("Table 2: flash I/Os per lookup\n");
    let chip = FlashCostModel::from_profile(&DeviceProfile::flash_chip());
    let intel = FlashCostModel::from_profile(&DeviceProfile::intel_x18m());
    let widths = [12, 14, 14, 16, 16];
    print_header(
        &["# flash I/O", "P(0% LSR)", "P(40% LSR)", "flash chip (ms)", "Intel SSD (ms)"],
        &widths,
    );
    let p0 = distribution(0.0);
    let p40 = distribution(0.4);
    for n in 0..4usize {
        print_row(
            &[
                format!("{n}"),
                format!("{:.4}", p0.get(n).copied().unwrap_or(0.0)),
                format!("{:.4}", p40.get(n).copied().unwrap_or(0.0)),
                format!("{:.2}", chip.page_read_cost().as_millis_f64() * n as f64),
                format!("{:.2}", intel.page_read_cost().as_millis_f64() * n as f64),
            ],
            &widths,
        );
    }
    println!(
        "\nPaper anchors: with 0% LSR ~99% of lookups need no flash I/O at all; with\n\
         40% LSR just under 40% of lookups need exactly one flash read, and more than\n\
         one read is rare (Bloom false positives only)."
    );
}
