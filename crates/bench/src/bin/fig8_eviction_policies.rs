//! Figure 8 / §7.4: cost of the flexible eviction policies.
//!
//! (a) CCDF of insert latencies under the update-based partial-discard
//!     policy on the Intel and Transcend SSDs;
//! (b) CDF of the number of incarnations tried per eviction (cascades);
//! plus the LRU and priority-based policies' average insert cost.

use bench::{build_clam_with, ms, print_header, print_row, standard_config, Medium};
use bufferhash::EvictionPolicy;
use flashsim::LatencyRecorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn drive(medium: Medium, policy: EvictionPolicy, ops: u64) -> (bench::AnyClam, LatencyRecorder) {
    // Eviction churn wants a small log so policies actually evict: stay at
    // the pre-batching 16 MiB / 2 MiB size (1/32 of the 1/64-scale
    // default) rather than scaling up with the rest of the harness.
    let mut cfg = standard_config(bench::FLASH_BYTES / 32, bench::DRAM_BYTES / 32);
    cfg.eviction = policy;
    let mut clam = build_clam_with(medium, cfg);
    let mut rng = StdRng::seed_from_u64(77);
    let mut inserts = LatencyRecorder::new();
    for i in 0..ops {
        // 40% of operations update recently inserted keys; 60% are new keys
        // (the paper's 40%-update workload), interleaved with lookups.
        let key = if rng.gen_bool(0.4) {
            bench::workload_key(rng.gen_range(0..=i))
        } else {
            bench::workload_key(i)
        };
        if rng.gen_bool(0.5) {
            inserts.record(clam.insert(key, i));
        } else {
            clam.lookup(key);
        }
    }
    (clam, inserts)
}

fn main() {
    println!("Figure 8: eviction policies (40% update workload)\n");

    // (a) CCDF of insert latencies with the update-based policy.
    for medium in [Medium::IntelSsd, Medium::TranscendSsd] {
        let (_clam, mut inserts) = drive(medium, EvictionPolicy::UpdateBased, 150_000);
        println!(
            "Update-based eviction on {}: mean insert {} ms, p99 {} ms, max {} ms",
            medium.label(),
            ms(inserts.mean()),
            ms(inserts.quantile(0.99)),
            ms(inserts.max())
        );
        let lo = flashsim::SimDuration::from_micros(1);
        let hi = inserts.max();
        println!("# CCDF: insert latency, update-based, {}", medium.label());
        for (p, frac) in inserts.ccdf(&LatencyRecorder::log_spaced_points(lo, hi, 16)) {
            println!("{:>12.4}  {:.5}", p.as_millis_f64(), frac);
        }
        println!();
    }

    // (b) CDF of incarnations tried per eviction cascade (Transcend).
    let (clam, _) = drive(Medium::TranscendSsd, EvictionPolicy::UpdateBased, 150_000);
    let hist = &clam.stats().cascade_histogram;
    let total: u64 = hist.iter().sum();
    println!("# CDF: incarnations tried per buffer flush (update-based, Transcend)");
    let mut cum = 0u64;
    for (tried, count) in hist.iter().enumerate() {
        if *count == 0 {
            continue;
        }
        cum += count;
        println!("{tried:>4}  {:.4}", cum as f64 / total.max(1) as f64);
    }

    // Comparison of policies on the Transcend SSD.
    println!("\nAverage insert latency by policy (Transcend SSD):");
    let widths = [24, 18];
    print_header(&["policy", "insert mean (ms)"], &widths);
    for (name, policy) in [
        ("FIFO (full discard)", EvictionPolicy::Fifo),
        ("LRU", EvictionPolicy::Lru),
        ("update-based", EvictionPolicy::UpdateBased),
        ("priority-based", EvictionPolicy::priority_threshold(u64::MAX / 2)),
    ] {
        let (_clam, inserts) = drive(Medium::TranscendSsd, policy, 100_000);
        print_row(&[name.to_string(), ms(inserts.mean())], &widths);
    }
    println!(
        "\nPaper anchors: FIFO and LRU keep the ~0.007-0.008 ms average insert; the\n\
         partial-discard policies leave most inserts untouched but add a heavy tail\n\
         (cascaded evictions), raising the average substantially; ~90% of cascades\n\
         touch at most 3 incarnations."
    );
}
