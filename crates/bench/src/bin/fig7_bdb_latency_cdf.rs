//! Figure 7: CDFs of Berkeley-DB-style index latencies on an Intel SSD and
//! on a magnetic disk, under the same interleaved 40%-LSR workload as
//! Figure 6.

use bench::{
    build_bdb, ms, print_cdf, run_mixed_workload, run_mixed_workload_continuing, Medium,
    TailSummary,
};

fn main() {
    println!("Figure 7: BerkeleyDB-style index latency CDFs (40% LSR workload)\n");
    for medium in [Medium::IntelSsd, Medium::Disk] {
        let mut bdb = build_bdb(medium, bench::FLASH_BYTES);
        run_mixed_workload(&mut bdb, 60_000, 0.0, 0.0, 21);
        let mut result = run_mixed_workload_continuing(&mut bdb, 20_000, 0.5, 0.4, 22, 60_000);
        println!("== BerkeleyDB hash index + {} ==", medium.label());
        println!(
            "  mean lookup {} ms   (p99 {} ms)",
            ms(result.lookups.mean()),
            ms(result.lookups.quantile(0.99))
        );
        println!(
            "  mean insert {} ms   (p99 {} ms)",
            ms(result.inserts.mean()),
            ms(result.inserts.quantile(0.99))
        );
        println!("  lookup tail: {}", TailSummary::from_recorder(&mut result.lookups));
        println!("  insert tail: {}", TailSummary::from_recorder(&mut result.inserts));
        print_cdf(&format!("lookup latency, DB+{}", medium.label()), &mut result.lookups, 20);
        print_cdf(&format!("insert latency, DB+{}", medium.label()), &mut result.inserts, 20);
        println!();
    }
    println!(
        "Paper anchors: on disk both operations average ~7 ms (seek-bound); on the\n\
         Intel SSD the sustained random-write load keeps the FTL busy, so average\n\
         latencies remain in the milliseconds — orders of magnitude above the CLAM."
    );
}
