//! §7.3.1 ablations: what buffering, Bloom filters and bit-slicing each
//! contribute to CLAM performance (Intel SSD).

use bench::{
    build_clam_with, bulk_load, ms, print_header, print_row, run_mixed_workload,
    run_mixed_workload_continuing, standard_config, Ablation, Medium,
};

fn main() {
    println!("Ablation study (Intel SSD): contribution of each BufferHash mechanism\n");
    let widths = [26, 16, 16, 16, 16];
    print_header(
        &["configuration", "insert (ms)", "lookup40 (ms)", "lookup80 (ms)", "reads/lookup"],
        &widths,
    );
    for ablation in
        [Ablation::Full, Ablation::NoBloomFilters, Ablation::NoBitSlicing, Ablation::NoBuffering]
    {
        let mut row = vec![ablation.label().to_string()];
        let mut reads_per_lookup = 0.0;
        let mut insert_ms = String::new();
        for (idx, lsr) in [0.4f64, 0.8].iter().enumerate() {
            let cfg = ablation.apply(standard_config(bench::FLASH_BYTES, bench::DRAM_BYTES));
            let mut clam = build_clam_with(Medium::IntelSsd, cfg);
            // Smaller, per-op warm-up for the unbuffered case (every insert
            // hits flash); the buffered cases batch-load 1/64-scale fills.
            let warm = if ablation == Ablation::NoBuffering { 40_000 } else { 2_400_000 };
            if ablation == Ablation::NoBuffering {
                run_mixed_workload(&mut clam, warm, 0.0, 0.0, 41);
            } else {
                bulk_load(&mut clam, 0, warm as u64);
            }
            clam.reset_stats();
            let ops = if ablation == Ablation::NoBuffering { 6_000 } else { 30_000 };
            let result = run_mixed_workload_continuing(&mut clam, ops, 0.5, *lsr, 42, warm as u64);
            if idx == 0 {
                insert_ms = ms(result.inserts.mean());
                let stats = clam.stats();
                reads_per_lookup =
                    stats.lookup_flash_reads as f64 / stats.lookups.len().max(1) as f64;
            }
            if idx == 0 {
                row.push(insert_ms.clone());
            }
            row.push(ms(result.lookups.mean()));
        }
        row.push(format!("{reads_per_lookup:.2}"));
        print_row(&row, &widths);
    }
    println!(
        "\nPaper anchors: buffering turns ~5 ms unbuffered inserts into ~0.006 ms;\n\
         Bloom filters cut lookup flash I/O by 10-30x (misses no longer probe every\n\
         incarnation); bit-slicing shaves ~20% off memory-bound lookups."
    );
}
