//! Figure 5: spurious lookup rate vs memory allocated to buffers.
//!
//! With a fixed DRAM budget, giving more memory to buffers leaves less for
//! Bloom filters (higher false-positive rate) while giving less to buffers
//! creates more incarnations (more filters to match against). The measured
//! spurious-flash-read rate has a sweet spot, as in the paper's Figure 5.

use bench::{build_clam_with, bulk_load, print_header, print_row, standard_config, Medium};

fn main() {
    println!("Figure 5: spurious lookup rate vs memory allocated to buffers");
    println!(
        "(scaled configuration: {} MB flash, {} MB DRAM)\n",
        bench::FLASH_BYTES >> 20,
        bench::DRAM_BYTES >> 20
    );
    let widths = [22, 18, 18];
    print_header(&["buffers (KB)", "spurious rate", "bloom KB/incarn."], &widths);

    let dram = bench::DRAM_BYTES;
    // Sweep the buffer share of DRAM from tiny to nearly everything.
    for share in [1u64, 2, 4, 8, 16, 32, 48, 60] {
        let buffer_total = (dram * share / 64).max(32 * 1024);
        let mut cfg = standard_config(bench::FLASH_BYTES, dram);
        cfg.buffer_bytes_total = buffer_total;
        if cfg.buffer_bytes_per_table > buffer_total {
            cfg.buffer_bytes_per_table = buffer_total;
        }
        if cfg.validate().is_err() {
            continue;
        }
        let mut clam = build_clam_with(Medium::IntelSsd, cfg.clone());
        // Fill the table (batched: this is a pure load phase), then issue
        // lookups for absent keys: every flash read they trigger is
        // spurious (Bloom false positive).
        bulk_load(&mut clam, 0, 600_000);
        clam.reset_stats();
        let misses = 20_000u64;
        for i in 0..misses {
            clam.lookup(bufferhash::hash_with_seed(i, 0xab5e47));
        }
        let stats = clam.stats();
        let spurious_rate = stats.spurious_flash_reads as f64 / misses as f64;
        print_row(
            &[
                format!("{}", buffer_total / 1024),
                format!("{spurious_rate:.5}"),
                format!("{:.1}", cfg.bloom_bits_per_incarnation() as f64 / 8.0 / 1024.0),
            ],
            &widths,
        );
    }
    println!(
        "\nPaper anchor: the spurious rate is minimised near the analytically optimal\n\
         buffer allocation and stays low (<= ~0.01) over a broad plateau (Figure 5)."
    );
}
