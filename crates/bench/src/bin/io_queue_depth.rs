//! Queue-depth sweep over the `Device` submission queues.
//!
//! Companion to ROADMAP's "async / io_uring-style device backend" and
//! "true parallel stripe dispatch" items, in three parts:
//!
//! 1. **Real overlapped I/O** — flush-sized writes are submitted to a
//!    [`flashsim::FileDevice`] at several queue depths. The device spreads
//!    each batch over its worker pool (positioned I/O on the shared file)
//!    and the batch completes in max-over-lanes time; the acceptance bar is
//!    throughput improving monotonically with depth and **>= 2x at depth 8
//!    vs depth 1**.
//! 2. **Simulated SSD cross-check** — the same sweep against `Ssd` models
//!    with varying queue depth, compared with the closed-form
//!    `FlashCostModel::submit_makespan` term.
//! 3. **Parallel stripe dispatch** — `StripedClam::insert_batch` (stripes
//!    on their own threads, max-over-stripes latency) against the serial
//!    reference path (summed latency), with identical outcomes.
//!
//! `--smoke` runs a reduced sweep for CI.

use bench::{ms, print_header, print_row, workload_key};
use bufferhash::analysis::FlashCostModel;
use bufferhash::{Clam, ClamConfig, StripedClam};
use flashsim::queue::batch_latency;
use flashsim::{Device, DeviceProfile, FileDevice, IoRequest, QueueCapabilities, SimDuration, Ssd};

struct Scale {
    /// Write requests per submission (one per coalesced flush run).
    requests: usize,
    /// Bytes per write request (one incarnation-sized flush run).
    request_bytes: usize,
    /// Measurement trials per depth (best trial wins, to shed scheduler
    /// noise on loaded hosts).
    trials: usize,
    /// Queue depths to sweep.
    depths: &'static [usize],
    /// Ops for the striped-dispatch comparison.
    striped_ops: u64,
}

const FULL: Scale = Scale {
    requests: 512,
    request_bytes: 64 * 1024,
    trials: 5,
    depths: &[1, 2, 4, 8],
    striped_ops: 60_000,
};
const SMOKE: Scale = Scale {
    requests: 128,
    request_bytes: 16 * 1024,
    trials: 3,
    depths: &[1, 2, 8],
    striped_ops: 12_000,
};

fn flush_batch(scale: &Scale) -> Vec<IoRequest> {
    (0..scale.requests)
        .map(|i| {
            IoRequest::write((i * scale.request_bytes) as u64, vec![i as u8; scale.request_bytes])
        })
        .collect()
}

fn mb_per_sec(bytes: usize, elapsed: SimDuration) -> f64 {
    bytes as f64 / (1 << 20) as f64 / elapsed.as_secs_f64().max(1e-12)
}

/// Part 1: real overlapped file I/O. Returns PASS/FAIL.
fn file_device_sweep(scale: &Scale) -> bool {
    let capacity = (scale.requests * scale.request_bytes) as u64;
    let path = std::env::temp_dir().join(format!("clam-io-queue-depth-{}", std::process::id()));
    println!(
        "[1/3] FileDevice: {} flush writes x {} KiB per submission, best of {} trials",
        scale.requests,
        scale.request_bytes >> 10,
        scale.trials
    );
    let widths = [8, 14, 12, 14, 10, 22];
    print_header(
        &["depth", "elapsed (ms)", "wall (ms)", "MiB/s", "speedup", "overlapped/submitted"],
        &widths,
    );

    // "elapsed" is the queue's completion latency (max over lanes of
    // measured per-request times — the issue-prescribed accounting, which
    // the PASS bar gates on); "wall" is the host wall clock around the
    // whole submission, shown for transparency (on hosts with fewer cores
    // than the queue depth the pool is capped and wall time cannot shrink
    // with depth, which is exactly why the queue model exists).
    let mut throughputs: Vec<f64> = Vec::new();
    let mut base = 0.0f64;
    for &depth in scale.depths {
        let mut best = SimDuration::from_secs(3600);
        let mut best_wall = f64::MAX;
        let mut last_stats = String::new();
        for _ in 0..scale.trials {
            let mut dev = FileDevice::with_queue_depth(&path, capacity, depth).expect("file dev");
            let mut requests = flush_batch(scale);
            let wall_start = std::time::Instant::now();
            let completions = dev.submit(&mut requests).expect("submit");
            let wall = wall_start.elapsed().as_secs_f64() * 1e3;
            assert!(completions.iter().all(|c| c.result.is_ok()), "file I/O failed");
            best = best.min(batch_latency(&completions));
            best_wall = best_wall.min(wall);
            let s = dev.stats();
            last_stats = format!("{}/{}", s.requests_overlapped, s.requests_submitted);
        }
        let thr = mb_per_sec(scale.requests * scale.request_bytes, best);
        if depth == scale.depths[0] {
            base = thr;
        }
        throughputs.push(thr);
        print_row(
            &[
                format!("{depth}"),
                ms(best),
                format!("{best_wall:.3}"),
                format!("{thr:.0}"),
                format!("{:.2}x", thr / base.max(1e-12)),
                last_stats,
            ],
            &widths,
        );
    }
    std::fs::remove_file(&path).ok();
    println!(
        "(\"elapsed\" = device-queue completion accounting, the swept metric; \"wall\" = host\n\
         wall clock, bounded by this machine's {} core(s) regardless of queue depth)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // 3% tolerance absorbs wall-clock measurement noise (per-depth steps
    // are ~2x, so this cannot mask a real regression).
    let monotone = throughputs.windows(2).all(|w| w[1] >= w[0] * 0.97);
    let speedup = throughputs.last().unwrap() / base.max(1e-12);
    let pass = monotone && speedup >= 2.0;
    if pass {
        println!(
            "PASS: throughput improves monotonically and is {speedup:.2}x at depth {} vs depth {}\n",
            scale.depths.last().unwrap(),
            scale.depths[0]
        );
    } else {
        println!(
            "FAIL: monotone = {monotone}, depth-{} speedup = {speedup:.2}x (target: monotone, >= 2x)\n",
            scale.depths.last().unwrap()
        );
    }
    pass
}

/// Part 2: simulated SSD sweep against the closed-form queue model.
fn simulated_sweep(scale: &Scale) {
    const PAGES: usize = 64;
    println!("[2/3] Simulated Intel-class SSD: {PAGES} page writes per submission vs model");
    let widths = [8, 16, 16, 10];
    print_header(&["depth", "measured (ms)", "model (ms)", "speedup"], &widths);
    let mut base = SimDuration::ZERO;
    for &depth in scale.depths {
        let profile = DeviceProfile {
            queue: QueueCapabilities::overlapped(depth),
            ..DeviceProfile::intel_x18m()
        };
        let mut ssd = Ssd::with_profile(16 << 20, profile.clone()).expect("ssd");
        let mut requests: Vec<IoRequest> =
            (0..PAGES).map(|i| IoRequest::write((i * 4096) as u64, vec![7u8; 4096])).collect();
        let completions = ssd.submit(&mut requests).expect("submit");
        let measured = batch_latency(&completions);
        let model = FlashCostModel::from_profile(&profile).submit_makespan(
            PAGES,
            profile.write_cost.cost(4096),
            depth,
        );
        assert_eq!(
            measured, model,
            "simulator and closed-form queue model must agree at depth {depth}"
        );
        if depth == scale.depths[0] {
            base = measured;
        }
        print_row(
            &[
                format!("{depth}"),
                ms(measured),
                ms(model),
                format!("{:.2}x", base.as_nanos() as f64 / measured.as_nanos().max(1) as f64),
            ],
            &widths,
        );
    }
    println!("simulator == closed-form model at every depth\n");
}

/// Part 3: parallel stripe dispatch vs the serial reference path.
fn striped_dispatch(scale: &Scale) {
    const STRIPES: usize = 4;
    let stripe = || {
        let cfg = ClamConfig::small_test(8 << 20, 2 << 20).expect("cfg");
        Clam::new(Ssd::intel(8 << 20).expect("ssd"), cfg).expect("clam")
    };
    let parallel = StripedClam::new((0..STRIPES).map(|_| stripe()).collect());
    let serial = StripedClam::new((0..STRIPES).map(|_| stripe()).collect());
    let ops: Vec<(u64, u64)> = (0..scale.striped_ops).map(|i| (workload_key(i), i)).collect();
    let mut par_total = SimDuration::ZERO;
    let mut ser_total = SimDuration::ZERO;
    for chunk in ops.chunks(1024) {
        let p = parallel.insert_batch(chunk).expect("parallel");
        let s = serial.insert_batch_serial(chunk).expect("serial");
        assert_eq!((p.flushed_ops, p.evictions), (s.flushed_ops, s.evictions));
        par_total += p.latency;
        ser_total += s.latency;
    }
    assert_eq!(parallel.stats().flushes, serial.stats().flushes, "outcomes must not change");
    println!(
        "[3/3] StripedClam ({STRIPES} stripes, {} inserts): parallel dispatch {} \
         (max-over-stripes) vs serial {} (summed) -> {:.2}x",
        scale.striped_ops,
        ms(par_total),
        ms(ser_total),
        ser_total.as_nanos() as f64 / par_total.as_nanos().max(1) as f64
    );
    // Flush every stripe concurrently (max-over-stripes latency) so the
    // device counters below show the queued incarnation writes.
    let flush_latency = parallel.flush_all().expect("flush_all");
    println!("flush_all across stripes: {} (max-over-stripes)", ms(flush_latency));
    let stats = parallel.stripe(0).expect("stripe").with(|c| c.device().stats());
    println!("stripe-0 device counters: {stats}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { &SMOKE } else { &FULL };
    println!("Submission-queue depth sweep ({} mode)\n", if smoke { "smoke" } else { "full" });
    let pass = file_device_sweep(scale);
    simulated_sweep(scale);
    striped_dispatch(scale);
    if !pass {
        println!("\noverall: FAIL (file-device queue scaling below target)");
        std::process::exit(1);
    }
    println!("\noverall: PASS");
}
