//! Queue-depth sweep over the `Device` submission queues.
//!
//! Companion to ROADMAP's "async / io_uring-style device backend",
//! "true parallel stripe dispatch", "drive lookups through the
//! submission queue", "completion ring", "ring-driven write path" and
//! "crash consistency" and "intra-stripe write concurrency" items, in
//! eight parts:
//!
//! 1. **Real overlapped I/O** — flush-sized writes are submitted to a
//!    [`flashsim::FileDevice`] at several queue depths. The device spreads
//!    each batch over its worker pool (positioned I/O on the shared file)
//!    and the batch completes in max-over-lanes time; the acceptance bar is
//!    throughput improving monotonically with depth and **>= 2x at depth 8
//!    vs depth 1**.
//! 2. **Simulated SSD cross-check** — the same sweep against `Ssd` models
//!    with varying queue depth, compared with the closed-form
//!    `FlashCostModel::submit_makespan` term.
//! 3. **Parallel stripe dispatch** — `StripedClam::insert_batch` (stripes
//!    on their own threads, max-over-stripes latency) against the serial
//!    reference path (summed latency), with identical outcomes.
//! 4. **Queued lookups** — the read path: a miss-heavy `Clam::lookup_batch`
//!    sweep on the real file backend (probe waves overlap on the worker
//!    pool; acceptance bar **>= 2x lookup throughput at depth 8 vs
//!    depth 1**), plus an exact cross-check of the simulated SSD against
//!    `FlashCostModel::lookup_batch_makespan`.
//! 5. **Ring vs barrier** — miss-heavy lookups driven through the
//!    streaming completion ring (`Clam::lookup_batch`, submit-without-wait
//!    on the persistent pool) against the barrier wave reference
//!    (`Clam::lookup_batch_waves`), on *small batches over deep probe
//!    chains*, where the barrier's round tax is heaviest: every round it
//!    waits for the wave straggler and strands the queue's tail lanes
//!    (`batch mod depth` slots), while the ring re-arms each key the
//!    moment its previous read retires and keeps the lanes packed.
//!    Acceptance bar: **>= 1.2x at depth 8** (identical outcomes
//!    asserted; the closed-form `ring_over_waves_speedup` is printed
//!    alongside).
//! 6. **Mixed flush + lookup traffic** — the write path rides the same
//!    completion ring as the read path. First an exact cross-check of the
//!    simulated SSD against `FlashCostModel::mixed_ring_makespan`
//!    (flush-write phase then probe-chain phase through one shared ring),
//!    then a steady-state FileDevice sweep: each batch evicts + flushes an
//!    incarnation and then probes deep miss chains, on the default
//!    ring-driven CLAM vs the blocking barrier reference
//!    (`set_barrier_writes(true)` + `lookup_batch_waves`). Acceptance
//!    bar: **>= 1.2x ring over barrier at depth 8** (identical outcomes
//!    asserted).
//! 7. **Recovery scan** — a power cut (with a torn trailing write) lands
//!    at ~70% of an insert run, then `Clam::recover` ring-scans every log
//!    slot of the surviving image. The reported `scan_makespan` must match
//!    `FlashCostModel::recovery_scan_makespan` **exactly** at every queue
//!    depth, and scan throughput must scale with depth (>= 2x at the
//!    deepest queue vs depth 1).
//! 8. **Intra-stripe write concurrency** — `StripedClam::insert_batch` on
//!    a single stripe through the per-super-table write locks vs the
//!    `set_coarse_locks(true)` stripe-global baseline, over several batch
//!    sizes, with the fine arm forced through multi-chunk scoped-thread
//!    dispatch. Wall clock is informational (overlap needs spare cores);
//!    the acceptance is **exact cross-arm ledger sums**: identical
//!    per-batch outcomes, identical summed ledgers (flushes, forced
//!    evictions, coalesced runs, insert/delete recorder sums) and
//!    identical flash traffic, with the fine arm's table-lock ledger
//!    filled and the coarse arm's empty.
//!
//! `--smoke` runs a reduced sweep for CI.

use bench::{ms, print_header, print_row, workload_key};
use bufferhash::analysis::FlashCostModel;
use bufferhash::{Clam, ClamConfig, EvictionPolicy, FilterMode, FlashLayoutMode, StripedClam};
use flashsim::queue::batch_latency;
use flashsim::{Device, DeviceProfile, FileDevice, IoRequest, QueueCapabilities, SimDuration, Ssd};

struct Scale {
    /// Write requests per submission (one per coalesced flush run).
    requests: usize,
    /// Bytes per write request (one incarnation-sized flush run).
    request_bytes: usize,
    /// Measurement trials per depth (best trial wins, to shed scheduler
    /// noise on loaded hosts).
    trials: usize,
    /// Queue depths to sweep.
    depths: &'static [usize],
    /// Ops for the striped-dispatch comparison.
    striped_ops: u64,
    /// Keys loaded into the file-backed CLAM before the lookup sweep.
    lookup_load: u64,
    /// Keys per miss-heavy `lookup_batch` call in the lookup sweep.
    lookup_batch: usize,
    /// `lookup_batch` calls per trial in the lookup sweep.
    lookup_batches: usize,
    /// Keys per call in the ring-vs-barrier comparison (smaller batches
    /// accentuate the barrier's per-round straggler tax).
    ring_batch: usize,
    /// Calls per trial in the ring-vs-barrier comparison.
    ring_batches: usize,
}

const FULL: Scale = Scale {
    requests: 512,
    request_bytes: 64 * 1024,
    trials: 5,
    depths: &[1, 2, 4, 8],
    striped_ops: 60_000,
    lookup_load: 60_000,
    lookup_batch: 512,
    lookup_batches: 4,
    ring_batch: 10,
    ring_batches: 48,
};
const SMOKE: Scale = Scale {
    requests: 128,
    request_bytes: 16 * 1024,
    trials: 3,
    depths: &[1, 2, 8],
    striped_ops: 12_000,
    lookup_load: 60_000,
    lookup_batch: 256,
    lookup_batches: 2,
    ring_batch: 10,
    ring_batches: 24,
};

fn flush_batch(scale: &Scale) -> Vec<IoRequest> {
    (0..scale.requests)
        .map(|i| {
            IoRequest::write((i * scale.request_bytes) as u64, vec![i as u8; scale.request_bytes])
        })
        .collect()
}

fn mb_per_sec(bytes: usize, elapsed: SimDuration) -> f64 {
    bytes as f64 / (1 << 20) as f64 / elapsed.as_secs_f64().max(1e-12)
}

/// Host wall-clock cell for a table row. Wall time only reflects genuine
/// overlap when the host has spare cores for the worker pool (and the
/// stripe threads), so single-core hosts print `n/a` instead of a number
/// that cannot improve with depth.
fn wall_cell(wall_ms: f64) -> String {
    if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
        format!("{wall_ms:.3}")
    } else {
        "n/a".into()
    }
}

/// Part 1: real overlapped file I/O. Returns PASS/FAIL.
fn file_device_sweep(scale: &Scale) -> bool {
    let capacity = (scale.requests * scale.request_bytes) as u64;
    let path = std::env::temp_dir().join(format!("clam-io-queue-depth-{}", std::process::id()));
    println!(
        "[1/8] FileDevice: {} flush writes x {} KiB per submission, best of {} trials",
        scale.requests,
        scale.request_bytes >> 10,
        scale.trials
    );
    let widths = [8, 14, 12, 14, 10, 22];
    print_header(
        &["depth", "elapsed (ms)", "wall (ms)", "MiB/s", "speedup", "overlapped/submitted"],
        &widths,
    );

    // "elapsed" is the queue's completion latency (max over lanes of
    // measured per-request times — the issue-prescribed accounting, which
    // the PASS bar gates on); "wall" is the host wall clock around the
    // whole submission, shown for transparency (on hosts with fewer cores
    // than the queue depth the pool is capped and wall time cannot shrink
    // with depth, which is exactly why the queue model exists).
    let mut throughputs: Vec<f64> = Vec::new();
    let mut base = 0.0f64;
    for &depth in scale.depths {
        let mut best = SimDuration::from_secs(3600);
        let mut best_wall = f64::MAX;
        let mut last_stats = String::new();
        for _ in 0..scale.trials {
            let mut dev = FileDevice::with_queue_depth(&path, capacity, depth).expect("file dev");
            let mut requests = flush_batch(scale);
            let wall_start = std::time::Instant::now();
            let completions = dev.submit(&mut requests).expect("submit");
            let wall = wall_start.elapsed().as_secs_f64() * 1e3;
            assert!(completions.iter().all(|c| c.result.is_ok()), "file I/O failed");
            best = best.min(batch_latency(&completions));
            best_wall = best_wall.min(wall);
            let s = dev.stats();
            last_stats = format!("{}/{}", s.requests_overlapped, s.requests_submitted);
        }
        let thr = mb_per_sec(scale.requests * scale.request_bytes, best);
        if depth == scale.depths[0] {
            base = thr;
        }
        throughputs.push(thr);
        print_row(
            &[
                format!("{depth}"),
                ms(best),
                format!("{best_wall:.3}"),
                format!("{thr:.0}"),
                format!("{:.2}x", thr / base.max(1e-12)),
                last_stats,
            ],
            &widths,
        );
    }
    std::fs::remove_file(&path).ok();
    println!(
        "(\"elapsed\" = device-queue completion accounting, the swept metric; \"wall\" = host\n\
         wall clock, bounded by this machine's {} core(s) regardless of queue depth)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // 3% tolerance absorbs wall-clock measurement noise (per-depth steps
    // are ~2x, so this cannot mask a real regression).
    let monotone = throughputs.windows(2).all(|w| w[1] >= w[0] * 0.97);
    let speedup = throughputs.last().unwrap() / base.max(1e-12);
    let pass = monotone && speedup >= 2.0;
    if pass {
        println!(
            "PASS: throughput improves monotonically and is {speedup:.2}x at depth {} vs depth {}\n",
            scale.depths.last().unwrap(),
            scale.depths[0]
        );
    } else {
        println!(
            "FAIL: monotone = {monotone}, depth-{} speedup = {speedup:.2}x (target: monotone, >= 2x)\n",
            scale.depths.last().unwrap()
        );
    }
    pass
}

/// Part 2: simulated SSD sweep against the closed-form queue model.
fn simulated_sweep(scale: &Scale) {
    const PAGES: usize = 64;
    println!("[2/8] Simulated Intel-class SSD: {PAGES} page writes per submission vs model");
    let widths = [8, 16, 16, 10];
    print_header(&["depth", "measured (ms)", "model (ms)", "speedup"], &widths);
    let mut base = SimDuration::ZERO;
    for &depth in scale.depths {
        let profile = DeviceProfile {
            queue: QueueCapabilities::overlapped(depth),
            ..DeviceProfile::intel_x18m()
        };
        let mut ssd = Ssd::with_profile(16 << 20, profile.clone()).expect("ssd");
        let mut requests: Vec<IoRequest> =
            (0..PAGES).map(|i| IoRequest::write((i * 4096) as u64, vec![7u8; 4096])).collect();
        let completions = ssd.submit(&mut requests).expect("submit");
        let measured = batch_latency(&completions);
        let model = FlashCostModel::from_profile(&profile).submit_makespan(
            PAGES,
            profile.write_cost.cost(4096),
            depth,
        );
        assert_eq!(
            measured, model,
            "simulator and closed-form queue model must agree at depth {depth}"
        );
        if depth == scale.depths[0] {
            base = measured;
        }
        print_row(
            &[
                format!("{depth}"),
                ms(measured),
                ms(model),
                format!("{:.2}x", base.as_nanos() as f64 / measured.as_nanos().max(1) as f64),
            ],
            &widths,
        );
    }
    println!("simulator == closed-form model at every depth\n");
}

/// Part 3: parallel stripe dispatch vs the serial reference path.
fn striped_dispatch(scale: &Scale) {
    const STRIPES: usize = 4;
    let stripe = || {
        let cfg = ClamConfig::small_test(8 << 20, 2 << 20).expect("cfg");
        Clam::new(Ssd::intel(8 << 20).expect("ssd"), cfg).expect("clam")
    };
    let parallel = StripedClam::new((0..STRIPES).map(|_| stripe()).collect());
    let serial = StripedClam::new((0..STRIPES).map(|_| stripe()).collect());
    let ops: Vec<(u64, u64)> = (0..scale.striped_ops).map(|i| (workload_key(i), i)).collect();
    let mut par_total = SimDuration::ZERO;
    let mut ser_total = SimDuration::ZERO;
    let mut par_wall = 0.0f64;
    let mut ser_wall = 0.0f64;
    for chunk in ops.chunks(1024) {
        let t = std::time::Instant::now();
        let p = parallel.insert_batch(chunk).expect("parallel");
        par_wall += t.elapsed().as_secs_f64() * 1e3;
        let t = std::time::Instant::now();
        let s = serial.insert_batch_serial(chunk).expect("serial");
        ser_wall += t.elapsed().as_secs_f64() * 1e3;
        assert_eq!((p.flushed_ops, p.evictions), (s.flushed_ops, s.evictions));
        par_total += p.latency;
        ser_total += s.latency;
    }
    assert_eq!(parallel.stats().flushes, serial.stats().flushes, "outcomes must not change");
    println!(
        "[3/8] StripedClam ({STRIPES} stripes, {} inserts): parallel dispatch {} \
         (max-over-stripes) vs serial {} (summed) -> {:.2}x",
        scale.striped_ops,
        ms(par_total),
        ms(ser_total),
        ser_total.as_nanos() as f64 / par_total.as_nanos().max(1) as f64
    );
    println!(
        "wall clock: parallel {} ms vs serial {} ms (stripe threads need spare cores)",
        wall_cell(par_wall),
        wall_cell(ser_wall)
    );
    // Flush every stripe concurrently (max-over-stripes latency) so the
    // device counters below show the queued incarnation writes.
    let flush_latency = parallel.flush_all().expect("flush_all");
    println!("flush_all across stripes: {} (max-over-stripes)", ms(flush_latency));
    let stats = parallel.stripe(0).expect("stripe").with(|c| c.device().stats());
    println!("stripe-0 device counters: {stats}");
}

/// A single-super-table CLAM with `rounds` incarnations of a few entries
/// each and Bloom filters disabled: every miss probes every incarnation,
/// one page per wave, with no overflow chains — a deterministic probe
/// pattern for the exact model cross-check.
fn deterministic_probe_clam<D: Device>(device: D, rounds: usize) -> Clam<D> {
    let cfg = ClamConfig {
        flash_capacity: 8 << 20,
        dram_bytes: 1 << 20,
        buffer_bytes_total: 32 * 1024,
        buffer_bytes_per_table: 32 * 1024,
        entry_size: 16,
        max_buffer_utilization: 0.5,
        eviction: EvictionPolicy::Fifo,
        filter_mode: FilterMode::Disabled,
        layout: FlashLayoutMode::GlobalLog,
        enable_buffering: true,
    };
    cfg.validate().expect("valid probe config");
    let mut clam = Clam::new(device, cfg).expect("clam");
    for round in 0..rounds as u64 {
        for i in 0..8u64 {
            clam.insert(workload_key(round * 100 + i), i).expect("insert");
        }
        clam.flush_all().expect("flush");
    }
    clam
}

/// Part 4: the queued lookup pipeline. Returns PASS/FAIL.
fn queued_lookup_sweep(scale: &Scale) -> bool {
    // ------------------------------------------------------------------
    // 4a. Simulated SSD vs the closed-form queued-lookup model (exact).
    // ------------------------------------------------------------------
    const KEYS: usize = 64;
    const ROUNDS: usize = 4;
    println!(
        "[4/8] Queued lookups: {KEYS} misses x {ROUNDS} probes each on the simulated SSD vs model"
    );
    let widths = [8, 16, 16, 10];
    print_header(&["depth", "measured (ms)", "model (ms)", "speedup"], &widths);
    let mut base = SimDuration::ZERO;
    for &depth in scale.depths {
        let profile = DeviceProfile {
            queue: QueueCapabilities::overlapped(depth),
            ..DeviceProfile::intel_x18m()
        };
        let mut clam = deterministic_probe_clam(
            Ssd::with_profile(8 << 20, profile.clone()).expect("ssd"),
            ROUNDS,
        );
        let keys: Vec<u64> = (0..KEYS as u64).map(|i| workload_key(7_000_000 + i)).collect();
        let batch = clam.lookup_batch(&keys).expect("lookup_batch");
        assert_eq!(batch.waves, ROUNDS, "every miss probes every incarnation");
        assert_eq!(batch.probe_reads, ROUNDS * KEYS);
        let model = FlashCostModel::from_profile(&profile);
        let predicted = model.lookup_batch_makespan(KEYS, ROUNDS, depth);
        assert_eq!(
            batch.probe_latency, predicted,
            "simulator and closed-form queued-lookup model must agree at depth {depth}"
        );
        if depth == scale.depths[0] {
            base = batch.probe_latency;
        }
        print_row(
            &[
                format!("{depth}"),
                ms(batch.probe_latency),
                ms(predicted),
                format!(
                    "{:.2}x",
                    base.as_nanos() as f64 / batch.probe_latency.as_nanos().max(1) as f64
                ),
            ],
            &widths,
        );
    }
    println!("simulator == closed-form queued-lookup model at every depth\n");

    // ------------------------------------------------------------------
    // 4b. Miss-heavy lookup_batch sweep on the real file backend.
    // ------------------------------------------------------------------
    let path = std::env::temp_dir().join(format!("clam-lookup-queue-{}", std::process::id()));
    println!(
        "miss-heavy Clam::lookup_batch on FileDevice: {} batches x {} absent keys \
         (Bloom filters disabled), best of {} trials",
        scale.lookup_batches, scale.lookup_batch, scale.trials
    );
    let widths = [8, 14, 14, 12, 10];
    print_header(&["depth", "elapsed (ms)", "klookups/s", "probe reads", "speedup"], &widths);
    let mut throughputs: Vec<f64> = Vec::new();
    let mut base = 0.0f64;
    for &depth in scale.depths {
        // Build and load once per depth: the sweep keys all miss and the
        // policy is FIFO, so lookups mutate nothing — trials can reuse the
        // loaded CLAM and only re-measure the lookup phase.
        let device = FileDevice::with_queue_depth(&path, 8 << 20, depth).expect("file device");
        let mut cfg = ClamConfig::small_test(8 << 20, 2 << 20).expect("cfg");
        cfg.filter_mode = FilterMode::Disabled;
        let mut clam = Clam::new(device, cfg).expect("clam");
        let load: Vec<(u64, u64)> = (0..scale.lookup_load).map(|i| (workload_key(i), i)).collect();
        for chunk in load.chunks(1024) {
            clam.insert_batch(chunk).expect("load");
        }
        let mut best = SimDuration::from_secs(3600);
        let mut probe_reads = 0usize;
        for _ in 0..scale.trials {
            let mut elapsed = SimDuration::ZERO;
            probe_reads = 0;
            for b in 0..scale.lookup_batches {
                let keys: Vec<u64> = (0..scale.lookup_batch as u64)
                    .map(|i| workload_key(9_000_000 + b as u64 * 100_000 + i))
                    .collect();
                let batch = clam.lookup_batch(&keys).expect("lookup_batch");
                assert_eq!(batch.hits(), 0, "sweep keys must miss");
                elapsed += batch.latency;
                probe_reads += batch.probe_reads;
            }
            best = best.min(elapsed);
        }
        let lookups = (scale.lookup_batches * scale.lookup_batch) as f64;
        let thr = lookups / best.as_millis_f64().max(1e-12);
        if depth == scale.depths[0] {
            base = thr;
        }
        throughputs.push(thr);
        print_row(
            &[
                format!("{depth}"),
                ms(best),
                format!("{thr:.1}"),
                format!("{probe_reads}"),
                format!("{:.2}x", thr / base.max(1e-12)),
            ],
            &widths,
        );
    }
    std::fs::remove_file(&path).ok();

    // Same tolerance story as part 1: queue-completion accounting, with a
    // 3% allowance for wall-clock noise in the measured per-read times.
    let monotone = throughputs.windows(2).all(|w| w[1] >= w[0] * 0.97);
    let speedup = throughputs.last().unwrap() / base.max(1e-12);
    let pass = monotone && speedup >= 2.0;
    if pass {
        println!(
            "PASS: miss-heavy lookup throughput is {speedup:.2}x at depth {} vs depth {}\n",
            scale.depths.last().unwrap(),
            scale.depths[0]
        );
    } else {
        println!(
            "FAIL: monotone = {monotone}, depth-{} lookup speedup = {speedup:.2}x \
             (target: monotone, >= 2x)\n",
            scale.depths.last().unwrap()
        );
    }
    pass
}

/// Part 5: streaming ring vs barrier waves on the real file backend.
/// Returns PASS/FAIL.
fn ring_vs_barrier_sweep(scale: &Scale) -> bool {
    const ROUNDS: usize = 16;
    let path = std::env::temp_dir().join(format!("clam-ring-barrier-{}", std::process::id()));
    println!(
        "[5/8] Ring vs barrier on FileDevice: {} batches x {} absent keys probing {ROUNDS} \
         incarnations each, best of {} trials",
        scale.ring_batches, scale.ring_batch, scale.trials
    );
    let widths = [8, 14, 14, 13, 13, 10, 12, 11, 11];
    print_header(
        &[
            "depth",
            "barrier (ms)",
            "ring (ms)",
            "barrier wall",
            "ring wall",
            "reaps",
            "depth hwm",
            "ring gain",
            "model gain",
        ],
        &widths,
    );
    let mut final_gain = 0.0f64;
    for &depth in scale.depths {
        // Build and load once per depth: sweep keys all miss under FIFO,
        // so both pipelines observe identical state and trials can reuse
        // the loaded CLAM.
        let device = FileDevice::with_queue_depth(&path, 8 << 20, depth).expect("file device");
        let mut clam = deterministic_probe_clam(device, ROUNDS);
        let model_gain = FlashCostModel::from_profile(clam.device().profile())
            .ring_over_waves_speedup(scale.ring_batch, ROUNDS, depth);
        let mut best_barrier = SimDuration::from_secs(3600);
        let mut best_ring = SimDuration::from_secs(3600);
        let mut best_barrier_wall = f64::MAX;
        let mut best_ring_wall = f64::MAX;
        let mut reaps = 0usize;
        let mut depth_hwm = 0usize;
        for _ in 0..scale.trials {
            let mut barrier = SimDuration::ZERO;
            let mut ring = SimDuration::ZERO;
            let mut barrier_wall = 0.0f64;
            let mut ring_wall = 0.0f64;
            for b in 0..scale.ring_batches {
                let keys: Vec<u64> = (0..scale.ring_batch as u64)
                    .map(|i| workload_key(9_500_000 + b as u64 * 100_000 + i))
                    .collect();
                // Alternate call order so neither pipeline systematically
                // benefits from the other having warmed the page cache.
                let (w, r) = if b % 2 == 0 {
                    let t = std::time::Instant::now();
                    let w = clam.lookup_batch_waves(&keys).expect("lookup_batch_waves");
                    barrier_wall += t.elapsed().as_secs_f64() * 1e3;
                    let t = std::time::Instant::now();
                    let r = clam.lookup_batch(&keys).expect("lookup_batch");
                    ring_wall += t.elapsed().as_secs_f64() * 1e3;
                    (w, r)
                } else {
                    let t = std::time::Instant::now();
                    let r = clam.lookup_batch(&keys).expect("lookup_batch");
                    ring_wall += t.elapsed().as_secs_f64() * 1e3;
                    let t = std::time::Instant::now();
                    let w = clam.lookup_batch_waves(&keys).expect("lookup_batch_waves");
                    barrier_wall += t.elapsed().as_secs_f64() * 1e3;
                    (w, r)
                };
                assert_eq!(w.hits(), 0, "sweep keys must miss");
                assert_eq!(w.waves, ROUNDS, "every miss probes every incarnation");
                // The streaming pipeline must produce identical outcomes.
                assert_eq!(r.values(), w.values(), "ring and barrier outcomes diverge");
                assert_eq!(r.probe_reads, w.probe_reads);
                barrier += w.probe_latency;
                ring += r.probe_latency;
                reaps = r.reaps;
                depth_hwm = r.ring_depth_high_water;
            }
            best_barrier = best_barrier.min(barrier);
            best_ring = best_ring.min(ring);
            best_barrier_wall = best_barrier_wall.min(barrier_wall);
            best_ring_wall = best_ring_wall.min(ring_wall);
        }
        let gain = best_barrier.as_nanos() as f64 / best_ring.as_nanos().max(1) as f64;
        final_gain = gain;
        print_row(
            &[
                format!("{depth}"),
                ms(best_barrier),
                ms(best_ring),
                wall_cell(best_barrier_wall),
                wall_cell(best_ring_wall),
                format!("{reaps}"),
                format!("{depth_hwm}"),
                format!("{gain:.2}x"),
                format!("{model_gain:.2}x"),
            ],
            &widths,
        );
    }
    std::fs::remove_file(&path).ok();
    println!(
        "(barrier = Clam::lookup_batch_waves, one Device::submit per round, which strands\n\
         the tail lanes of every round; ring = Clam::lookup_batch, submit-without-wait +\n\
         reap, which re-arms each key the moment its previous read retires)"
    );
    let pass = final_gain >= 1.2;
    if pass {
        println!(
            "PASS: streaming ring is {final_gain:.2}x over the barrier wave pipeline at depth {}\n",
            scale.depths.last().unwrap()
        );
    } else {
        println!(
            "FAIL: ring gain at depth {} is {final_gain:.2}x (target: >= 1.2x)\n",
            scale.depths.last().unwrap()
        );
    }
    pass
}

/// A single-super-table CLAM whose global log holds exactly `rounds`
/// incarnations: once the build fills the log, every further `flush_all`
/// wraps — forced FIFO eviction (trim) plus a fresh incarnation write —
/// so the measured loop runs in steady state (constant incarnation count,
/// constant probe depth) with real write traffic in every batch.
/// Incarnation size for the steady-state sweep: small relative to the
/// probe traffic (each batch reads `ring_batch x rounds` pages but writes
/// only one incarnation), so the sweep measures the *mixed* pipeline
/// rather than being dominated by a large sequential write that neither
/// arm can overlap (a single coalesced run occupies one lane either way).
const STEADY_BUFFER: u64 = 4 * 1024;

fn steady_state_clam<D: Device>(device: D, rounds: usize) -> Clam<D> {
    let cfg = ClamConfig {
        flash_capacity: rounds as u64 * STEADY_BUFFER,
        dram_bytes: 1 << 20,
        buffer_bytes_total: STEADY_BUFFER,
        buffer_bytes_per_table: STEADY_BUFFER,
        entry_size: 16,
        max_buffer_utilization: 0.5,
        eviction: EvictionPolicy::Fifo,
        filter_mode: FilterMode::Disabled,
        layout: FlashLayoutMode::GlobalLog,
        enable_buffering: true,
    };
    cfg.validate().expect("valid steady-state config");
    let mut clam = Clam::new(device, cfg).expect("clam");
    for round in 0..rounds as u64 {
        for i in 0..8u64 {
            clam.insert(workload_key(round * 100 + i), i).expect("insert");
        }
        clam.flush_all().expect("flush");
    }
    clam
}

/// Part 6: mixed flush + lookup traffic through the one shared ring.
/// Returns PASS/FAIL.
fn mixed_ring_sweep(scale: &Scale) -> bool {
    use flashsim::{CompletionRing, RingRequest};
    use std::collections::HashMap;

    // ------------------------------------------------------------------
    // 6a. Simulated SSD vs the closed-form mixed-ring model (exact).
    // ------------------------------------------------------------------
    const BUFFER: usize = 32 << 10;
    const FLUSHES: usize = 8;
    const KEYS: usize = 48;
    const PROBES: usize = 4;
    println!(
        "[6/8] Mixed ring: {FLUSHES} flush writes then {KEYS} misses x {PROBES} probes \
         through one ring on the simulated SSD vs model"
    );
    let widths = [8, 16, 16, 10];
    print_header(&["depth", "measured (ms)", "model (ms)", "speedup"], &widths);
    let mut base = SimDuration::ZERO;
    for &depth in scale.depths {
        let profile = DeviceProfile {
            queue: QueueCapabilities::overlapped(depth),
            ..DeviceProfile::intel_x18m()
        };
        let mut dev = Ssd::with_profile(64 << 20, profile.clone()).expect("ssd");
        let page = profile.page_size as usize;
        let model = FlashCostModel::from_profile(&profile);
        let mut ring = CompletionRing::new(model.lanes_at_depth(depth));
        // Write phase: incarnation-sized flush writes to disjoint log
        // slots, admitted without waiting.
        let writes: Vec<RingRequest> = (0..FLUSHES)
            .map(|i| RingRequest::new(IoRequest::write((i * BUFFER) as u64, vec![0xAA; BUFFER])))
            .collect();
        dev.submit_nowait(writes, &mut ring).expect("write phase");
        dev.reap(&mut ring, 1).expect("reap");
        // Read phase: probe chains, each re-armed as its previous read
        // retires — behind every write's conflict floor.
        let read_base = (FLUSHES * BUFFER) as u64;
        let first: Vec<RingRequest> = (0..KEYS)
            .map(|i| RingRequest::new(IoRequest::read(read_base + (i * page) as u64, page)))
            .collect();
        let tickets = dev.submit_nowait(first, &mut ring).expect("read phase");
        let mut rounds: HashMap<u64, usize> = tickets.iter().map(|t| (t.id(), 1)).collect();
        while ring.in_flight() > 0 {
            for c in dev.reap(&mut ring, 1).expect("reap") {
                let done = rounds.remove(&c.ticket.id()).expect("armed ticket");
                if done < PROBES {
                    let next = RingRequest::after(IoRequest::read(read_base, page), c.completed_at);
                    let t = dev.submit_nowait(vec![next], &mut ring).expect("re-arm");
                    rounds.insert(t[0].id(), done + 1);
                }
            }
        }
        let measured = ring.makespan();
        let predicted = model.mixed_ring_makespan(KEYS, PROBES, FLUSHES, BUFFER, depth);
        assert_eq!(
            measured, predicted,
            "simulator and closed-form mixed-ring model must agree at depth {depth}"
        );
        if depth == scale.depths[0] {
            base = measured;
        }
        print_row(
            &[
                format!("{depth}"),
                ms(measured),
                ms(predicted),
                format!("{:.2}x", base.as_nanos() as f64 / measured.as_nanos().max(1) as f64),
            ],
            &widths,
        );
    }
    println!("simulator == closed-form mixed-ring model at every depth\n");

    // ------------------------------------------------------------------
    // 6b. Steady-state flush + lookup sweep on the real file backend.
    // ------------------------------------------------------------------
    const ROUNDS: usize = 24;
    let dir = std::env::temp_dir();
    let ring_path = dir.join(format!("clam-mixed-ring-{}", std::process::id()));
    let barrier_path = dir.join(format!("clam-mixed-barrier-{}", std::process::id()));
    println!(
        "steady-state FileDevice sweep: per batch, one wrap flush (evict + incarnation \
         write) then {} absent keys probing {ROUNDS} incarnations, {} batches, best of {} \
         trials",
        scale.ring_batch, scale.ring_batches, scale.trials
    );
    let widths = [8, 14, 14, 13, 13, 9, 10];
    print_header(
        &["depth", "barrier (ms)", "ring (ms)", "barrier wall", "ring wall", "writes", "ring gain"],
        &widths,
    );
    let mut final_gain = 0.0f64;
    for &depth in scale.depths {
        let capacity = ROUNDS as u64 * STEADY_BUFFER;
        let ring_dev = FileDevice::with_queue_depth(&ring_path, capacity, depth).expect("file dev");
        let barrier_dev =
            FileDevice::with_queue_depth(&barrier_path, capacity, depth).expect("file dev");
        let mut ring_clam = steady_state_clam(ring_dev, ROUNDS);
        let mut barrier_clam = steady_state_clam(barrier_dev, ROUNDS);
        barrier_clam.set_barrier_writes(true);
        let mut best_ring = SimDuration::from_secs(3600);
        let mut best_barrier = SimDuration::from_secs(3600);
        let mut best_ring_wall = f64::MAX;
        let mut best_barrier_wall = f64::MAX;
        for trial in 0..scale.trials {
            let mut ring_elapsed = SimDuration::ZERO;
            let mut barrier_elapsed = SimDuration::ZERO;
            let mut ring_wall = 0.0f64;
            let mut barrier_wall = 0.0f64;
            for b in 0..scale.ring_batches {
                let tag = (trial * scale.ring_batches + b) as u64;
                let inserts: Vec<(u64, u64)> =
                    (0..8u64).map(|i| (workload_key(3_000_000 + tag * 100 + i), i)).collect();
                let misses: Vec<u64> = (0..scale.ring_batch as u64)
                    .map(|i| workload_key(9_700_000 + tag * 100_000 + i))
                    .collect();
                // Ring arm: streaming flush writes + streaming lookups.
                let t = std::time::Instant::now();
                let ins = ring_clam.insert_batch(&inserts).expect("ring insert");
                let flush = ring_clam.flush_all().expect("ring flush");
                let looked = ring_clam.lookup_batch(&misses).expect("ring lookup");
                ring_wall += t.elapsed().as_secs_f64() * 1e3;
                ring_elapsed += ins.latency + flush + looked.probe_latency;
                // Barrier arm: blocking writes + wave lookups.
                let t = std::time::Instant::now();
                let b_ins = barrier_clam.insert_batch(&inserts).expect("barrier insert");
                let b_flush = barrier_clam.flush_all().expect("barrier flush");
                let b_looked = barrier_clam.lookup_batch_waves(&misses).expect("barrier lookup");
                barrier_wall += t.elapsed().as_secs_f64() * 1e3;
                barrier_elapsed += b_ins.latency + b_flush + b_looked.probe_latency;
                // Both arms must observe the identical steady state.
                assert_eq!(looked.hits(), 0, "sweep keys must miss");
                assert_eq!(looked.values(), b_looked.values(), "mixed outcomes diverge");
                assert_eq!(looked.probe_reads, b_looked.probe_reads);
                assert_eq!((ins.flushed_ops, ins.evictions), (b_ins.flushed_ops, b_ins.evictions));
            }
            best_ring = best_ring.min(ring_elapsed);
            best_barrier = best_barrier.min(barrier_elapsed);
            best_ring_wall = best_ring_wall.min(ring_wall);
            best_barrier_wall = best_barrier_wall.min(barrier_wall);
        }
        let ring_stats = ring_clam.device().stats();
        let barrier_stats = barrier_clam.device().stats();
        assert_eq!(ring_stats.writes, barrier_stats.writes, "flash write traffic diverges");
        assert_eq!(ring_stats.trims, barrier_stats.trims, "eviction trim traffic diverges");
        let gain = best_barrier.as_nanos() as f64 / best_ring.as_nanos().max(1) as f64;
        final_gain = gain;
        print_row(
            &[
                format!("{depth}"),
                ms(best_barrier),
                ms(best_ring),
                wall_cell(best_barrier_wall),
                wall_cell(best_ring_wall),
                format!("{}", ring_stats.writes),
                format!("{gain:.2}x"),
            ],
            &widths,
        );
    }
    std::fs::remove_file(&ring_path).ok();
    std::fs::remove_file(&barrier_path).ok();
    println!(
        "(barrier = set_barrier_writes(true) + lookup_batch_waves: every flush write and\n\
         eviction trim blocks in Device::submit and every probe round waits for its wave\n\
         straggler; ring = the default path: writes and reads admitted to one shared\n\
         completion ring, submit-without-wait + reap)"
    );
    let pass = final_gain >= 1.2;
    if pass {
        println!(
            "PASS: ring-driven mixed traffic is {final_gain:.2}x over the barrier path at depth {}\n",
            scale.depths.last().unwrap()
        );
    } else {
        println!(
            "FAIL: mixed ring gain at depth {} is {final_gain:.2}x (target: >= 1.2x)\n",
            scale.depths.last().unwrap()
        );
    }
    pass
}

/// Part 7: recovery scan after a power cut vs the closed-form model.
/// Returns PASS/FAIL.
fn recovery_sweep(scale: &Scale) -> bool {
    use flashsim::CrashDevice;
    // 8 MiB flash under `small_test` = 256 log slots of 32 KiB each.
    const FLASH: u64 = 8 << 20;
    const SLOTS: usize = 256;
    const SLOT_BYTES: usize = 32 << 10;
    const LOAD: u64 = 40_000;
    println!(
        "[7/8] Recovery scan: power cut + torn write at ~70% of a {LOAD}-insert run, then \
         Clam::recover ring-scans all {SLOTS} slots vs FlashCostModel::recovery_scan_makespan"
    );
    let widths = [8, 12, 14, 14, 10, 12, 10];
    print_header(
        &["depth", "accepted", "measured (ms)", "model (ms)", "MiB/s", "entries", "speedup"],
        &widths,
    );
    let mut all_exact = true;
    let mut throughputs: Vec<f64> = Vec::new();
    let mut base = 0.0f64;
    for &depth in scale.depths {
        let profile = DeviceProfile {
            queue: QueueCapabilities::overlapped(depth),
            ..DeviceProfile::intel_x18m()
        };
        let cfg = ClamConfig::small_test(FLASH, 2 << 20).expect("cfg");
        // Twin run: total data-effect device ops for the workload, so the
        // cut can land at a fixed fraction of the real schedule.
        let mut twin = Clam::new(
            CrashDevice::new(Ssd::with_profile(FLASH, profile.clone()).expect("ssd")),
            cfg.clone(),
        )
        .expect("clam");
        for i in 0..LOAD {
            twin.insert(workload_key(i), i).expect("insert");
        }
        twin.flush_all().expect("flush");
        let total = twin.device().crash_stats().ops_applied;
        // Victim run: power cut at 70% of that schedule, torn final write.
        let mut crash = CrashDevice::cut_after(
            Ssd::with_profile(FLASH, profile.clone()).expect("ssd"),
            total * 7 / 10,
        );
        crash.set_torn_write_bytes(1_500);
        let mut victim = Clam::new(crash, cfg.clone()).expect("clam");
        for i in 0..LOAD {
            if victim.insert(workload_key(i), i).is_err() {
                break;
            }
        }
        let image = victim.into_device().into_inner();
        let (_, report) = Clam::recover(image, cfg).expect("recover");
        let model =
            FlashCostModel::from_profile(&profile).recovery_scan_makespan(SLOTS, SLOT_BYTES, depth);
        let exact = report.scan_makespan == model;
        all_exact &= exact;
        let thr = mb_per_sec(report.bytes_scanned as usize, report.scan_makespan);
        if depth == scale.depths[0] {
            base = thr;
        }
        throughputs.push(thr);
        print_row(
            &[
                format!("{depth}"),
                format!("{}+{}t", report.accepted, report.torn),
                ms(report.scan_makespan),
                format!("{}{}", ms(model), if exact { "" } else { " !" }),
                format!("{thr:.0}"),
                format!("{}", report.entries_recovered),
                format!("{:.2}x", thr / base.max(1e-12)),
            ],
            &widths,
        );
    }
    println!(
        "(measured = RecoveryReport::scan_makespan, the completion-ring makespan of the\n\
         whole-log slot scan; model = recovery_scan_makespan(slots, slot_bytes, depth))"
    );
    let monotone = throughputs.windows(2).all(|w| w[1] >= w[0]);
    let speedup = throughputs.last().unwrap() / base.max(1e-12);
    let pass = all_exact && monotone && speedup >= 2.0;
    if pass {
        println!(
            "PASS: scan == model at every depth; recovery throughput is {speedup:.2}x at \
             depth {} vs depth {}\n",
            scale.depths.last().unwrap(),
            scale.depths[0]
        );
    } else {
        println!(
            "FAIL: exact = {all_exact}, monotone = {monotone}, depth-{} speedup = \
             {speedup:.2}x (target: exact, monotone, >= 2x)\n",
            scale.depths.last().unwrap()
        );
    }
    pass
}

/// Part 8: per-super-table write concurrency inside one stripe — the
/// fine-grained write-lock path vs the `set_coarse_locks(true)`
/// stripe-global baseline, over several batch sizes. The fine arm is
/// forced through multi-chunk scoped-thread dispatch so the gate +
/// rendezvous machinery runs regardless of this host's core count; wall
/// clock is informational (overlap needs spare cores). Acceptance is
/// exactness, asserted batch by batch and again over the summed
/// ledgers: the fine path must replay the coarse baseline's write
/// history — flushes, forced evictions, coalesced runs, recorder sums
/// and raw flash traffic — while filling the table-lock ledger the
/// coarse arm must leave empty.
fn write_concurrency_sweep(scale: &Scale) {
    const CHUNK_SIZES: &[usize] = &[512, 4096, 16384];
    // Small enough that the insert volume overruns the buffers: the sweep
    // must drive flush chains (and their allocator grants) through the
    // batch gate, not just buffer-resident commits.
    let stripe = || {
        let cfg = ClamConfig::small_test(4 << 20, 1 << 20).expect("cfg");
        Clam::new(Ssd::intel(4 << 20).expect("ssd"), cfg).expect("clam")
    };
    println!(
        "[8/8] Intra-stripe write concurrency: {} inserts on one stripe, per-table write \
         locks (4 forced chunks) vs set_coarse_locks(true), per batch size",
        scale.striped_ops
    );
    let widths = [8, 11, 13, 10, 14, 11, 9];
    print_header(
        &["batch", "fine wall", "coarse wall", "lock hwm", "acquisitions", "contended", "flushes"],
        &widths,
    );
    for &chunk_size in CHUNK_SIZES {
        let fine = StripedClam::new(vec![stripe()]);
        let coarse = StripedClam::new(vec![stripe()]);
        fine.set_batch_parallelism(Some(4));
        coarse.set_coarse_locks(true);
        let ops: Vec<(u64, u64)> = (0..scale.striped_ops).map(|i| (workload_key(i), i)).collect();
        let mut fine_wall = 0.0f64;
        let mut coarse_wall = 0.0f64;
        for chunk in ops.chunks(chunk_size) {
            let t = std::time::Instant::now();
            let f = fine.insert_batch(chunk).expect("fine batch");
            fine_wall += t.elapsed().as_secs_f64() * 1e3;
            let t = std::time::Instant::now();
            let c = coarse.insert_batch(chunk).expect("coarse batch");
            coarse_wall += t.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                (f.flushed_ops, f.evictions, f.coalesced_writes, f.latency),
                (c.flushed_ops, c.evictions, c.coalesced_writes, c.latency),
                "fine and coarse batch outcomes diverge at batch size {chunk_size}"
            );
            // A scalar delete + re-insert per batch keeps the per-table
            // delete path in the measured mix.
            let (key, value) = chunk[0];
            fine.delete(key).expect("fine delete");
            coarse.delete(key).expect("coarse delete");
            fine.insert(key, value).expect("fine re-insert");
            coarse.insert(key, value).expect("coarse re-insert");
        }
        let fs = fine.stats();
        let cs = coarse.stats();
        assert_eq!(fs.flushes, cs.flushes, "flush ledger sums diverge");
        assert_eq!(fs.forced_evictions, cs.forced_evictions, "eviction ledger sums diverge");
        assert_eq!(
            fs.coalesced_flush_writes, cs.coalesced_flush_writes,
            "coalesced-run ledger sums diverge"
        );
        assert_eq!(fs.batched_inserts, cs.batched_inserts, "batched-insert ledger sums diverge");
        assert_eq!(
            (fs.inserts.len(), fs.inserts.total()),
            (cs.inserts.len(), cs.inserts.total()),
            "insert recorder sums diverge"
        );
        assert_eq!(
            (fs.deletes.len(), fs.deletes.total()),
            (cs.deletes.len(), cs.deletes.total()),
            "delete recorder sums diverge"
        );
        let f_dev = fine.stripe(0).expect("stripe").with(|c| c.device().stats());
        let c_dev = coarse.stripe(0).expect("stripe").with(|c| c.device().stats());
        assert_eq!(
            (f_dev.writes, f_dev.bytes_written, f_dev.trims, f_dev.erases),
            (c_dev.writes, c_dev.bytes_written, c_dev.trims, c_dev.erases),
            "flash traffic diverges"
        );
        assert!(fs.table_write_acquisitions > 0, "fine arm must take table locks");
        assert!(fs.table_lock_high_water >= 2, "forced chunks must overlap: {fs}");
        assert_eq!(cs.table_write_acquisitions, 0, "coarse arm must not take table locks");
        print_row(
            &[
                format!("{chunk_size}"),
                wall_cell(fine_wall),
                wall_cell(coarse_wall),
                format!("{}", fs.table_lock_high_water),
                format!("{}", fs.table_write_acquisitions),
                format!("{}", fs.table_write_contended),
                format!("{}", fs.flushes),
            ],
            &widths,
        );
    }
    println!(
        "exact: per-batch outcomes, summed ledgers and flash traffic matched across arms at\n\
         every batch size (wall clock informational — overlap needs spare cores)\n"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { &SMOKE } else { &FULL };
    println!("Submission-queue depth sweep ({} mode)\n", if smoke { "smoke" } else { "full" });
    let write_pass = file_device_sweep(scale);
    simulated_sweep(scale);
    striped_dispatch(scale);
    let lookup_pass = queued_lookup_sweep(scale);
    let ring_pass = ring_vs_barrier_sweep(scale);
    let mixed_pass = mixed_ring_sweep(scale);
    let recovery_pass = recovery_sweep(scale);
    write_concurrency_sweep(scale);
    if !write_pass || !lookup_pass || !ring_pass || !mixed_pass || !recovery_pass {
        println!(
            "\noverall: FAIL (write scaling: {}, queued lookup scaling: {}, ring vs barrier: {}, \
             mixed ring: {}, recovery scan: {})",
            if write_pass { "ok" } else { "below target" },
            if lookup_pass { "ok" } else { "below target" },
            if ring_pass { "ok" } else { "below target" },
            if mixed_pass { "ok" } else { "below target" },
            if recovery_pass { "ok" } else { "below target" }
        );
        std::process::exit(1);
    }
    println!("\noverall: PASS");
}
