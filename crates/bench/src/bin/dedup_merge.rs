//! §3: merging a smaller deduplication index into a larger one, with the
//! target index held in a CLAM versus a BerkeleyDB-style index.

use baseline::{BdbConfig, BdbHashIndex};
use bench::{print_header, print_row};
use bufferhash::{Clam, ClamConfig};
use dedup::{merge_indexes, FingerprintSet};
use flashsim::Ssd;
use wanopt::{BdbStore, ClamStore, FingerprintStore};

const FLASH: u64 = 64 << 20;

fn populate<S: FingerprintStore>(store: &mut S, set: &FingerprintSet) {
    for &(fp, addr) in &set.entries {
        store.insert(fp, addr).expect("insert");
    }
}

fn main() {
    println!("Index merge: looking up and inserting every fingerprint of a smaller index\n");
    // The "large" index already holds this dataset; the "small" one shares
    // 30% of its fingerprints with it.
    let existing = FingerprintSet::synthetic(200_000, 0.3, 1, 2);
    let incoming = FingerprintSet::synthetic(50_000, 0.3, 2, 1);

    let cfg = ClamConfig::small_test(FLASH, 16 << 20).expect("config");
    let mut clam = ClamStore::new(Clam::new(Ssd::intel(FLASH).expect("ssd"), cfg).expect("clam"));
    populate(&mut clam, &existing);
    let clam_report = merge_indexes(&mut clam, &incoming).expect("clam merge");

    let idx = BdbHashIndex::new(
        Ssd::intel(FLASH).expect("ssd"),
        BdbConfig { cache_bytes: 2 << 20, ..Default::default() },
    )
    .expect("bdb");
    let mut bdb = BdbStore::new(idx, usize::MAX);
    populate(&mut bdb, &existing);
    let bdb_report = merge_indexes(&mut bdb, &incoming).expect("bdb merge");

    let widths = [28, 16, 16, 18];
    print_header(&["target index", "merge time (s)", "fp/s", "already present"], &widths);
    for (label, report) in
        [("CLAM (Intel SSD)", clam_report), ("BerkeleyDB (Intel SSD)", bdb_report)]
    {
        print_row(
            &[
                label.to_string(),
                format!("{:.2}", report.total_time.as_secs_f64()),
                format!("{:.0}", report.fingerprints_per_second()),
                format!("{}", report.already_present),
            ],
            &widths,
        );
    }
    println!(
        "\nPaper anchor: merging fingerprints into a large index takes on the order of\n\
         2 hours with BerkeleyDB but under 2 minutes with a CLAM — a 50-100x gap,\n\
         which is the ratio to look for between the two rows above."
    );
}
