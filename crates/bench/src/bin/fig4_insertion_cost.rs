//! Figure 4: amortized and worst-case insertion cost vs per-table buffer
//! size, on a raw flash chip and on an Intel-class SSD.
//!
//! Panels (a)/(b) use the §6.1 cost model for a raw chip (C1 + C2 + C3);
//! panels (c)/(d) use the SSD form (C1 only). A simulated spot check at the
//! 128 KiB point cross-validates the model against the device simulator.

use bench::{build_clam_with, ms, print_header, print_row, standard_config, workload_key, Medium};
use bufferhash::analysis::FlashCostModel;
use flashsim::DeviceProfile;

fn main() {
    let chip = FlashCostModel::from_profile(&DeviceProfile::flash_chip());
    let ssd = FlashCostModel::from_profile(&DeviceProfile::intel_x18m());
    let s_eff = 32usize;
    let widths = [18, 20, 20, 20, 20];
    println!("Figure 4: insertion cost vs buffer size (analytical, §6.1)\n");
    print_header(
        &["buffer (KB)", "chip avg (ms)", "chip max (ms)", "SSD avg (ms)", "SSD max (ms)"],
        &widths,
    );
    for kb in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 10 * 1024, 100 * 1024] {
        let bytes = (kb * 1024) as usize;
        print_row(
            &[
                format!("{kb}"),
                format!("{:.5}", chip.insert_amortized(bytes, s_eff).as_millis_f64()),
                format!("{:.3}", chip.insert_worst_case(bytes).as_millis_f64()),
                format!("{:.5}", ssd.insert_amortized(bytes, s_eff).as_millis_f64()),
                format!("{:.3}", ssd.insert_worst_case(bytes).as_millis_f64()),
            ],
            &widths,
        );
    }

    // Simulated spot check at the paper's chosen 128 KiB (here the standard
    // scaled configuration's 32 KiB buffer) on the Intel SSD. Kept per-op
    // on purpose: the measured per-insert latency *is* the cross-check.
    let cfg = standard_config(bench::FLASH_BYTES, bench::DRAM_BYTES);
    let mut clam = build_clam_with(Medium::IntelSsd, cfg);
    for i in 0..480_000u64 {
        clam.insert(workload_key(i), i);
    }
    let stats = clam.stats();
    println!("\nSimulated cross-check (Intel SSD, standard scaled config):");
    println!("  measured average insert latency: {} ms", ms(stats.inserts.mean()));
    println!("  measured worst-case insert latency: {} ms", ms(stats.inserts.max()));
    println!(
        "\nPaper anchors: on the raw chip both curves are minimised when the buffer\n\
         matches the erase-block size; on the SSD larger buffers keep lowering the\n\
         average cost but raise the worst case (Figures 4a-4d)."
    );
}
