//! §1 / §7.5: hash operations per second per dollar for the CLAM, a RamSan
//! DRAM appliance, and BerkeleyDB on disk.

use baseline::{cost_effectiveness, cost_effectiveness_from_rate, SystemCost};
use bench::{
    build_bdb, build_clam, bulk_load, print_header, print_row, run_mixed_workload,
    run_mixed_workload_continuing, Medium,
};

fn main() {
    println!("Hash operations per second per dollar\n");

    // Measure CLAM lookup/insert means on the Intel-class SSD.
    let mut clam = build_clam(Medium::IntelSsd, bench::FLASH_BYTES, bench::DRAM_BYTES);
    bulk_load(&mut clam, 0, 1_600_000);
    clam.reset_stats();
    let clam_result = run_mixed_workload_continuing(&mut clam, 40_000, 0.5, 0.4, 52, 1_600_000);

    // And the BDB baseline on disk.
    let mut bdb = build_bdb(Medium::Disk, bench::FLASH_BYTES);
    run_mixed_workload(&mut bdb, 30_000, 0.0, 0.0, 53);
    let bdb_result = run_mixed_workload_continuing(&mut bdb, 10_000, 0.5, 0.4, 54, 30_000);

    let rows = [
        (
            "CLAM lookups (Intel SSD)",
            cost_effectiveness(
                &SystemCost::clam_prototype("CLAM (Intel SSD)", 390.0),
                clam_result.lookups.mean(),
            ),
        ),
        (
            "CLAM inserts (Intel SSD)",
            cost_effectiveness(
                &SystemCost::clam_prototype("CLAM (Intel SSD)", 390.0),
                clam_result.inserts.mean(),
            ),
        ),
        (
            "RamSan DRAM-SSD (rated 300K IOPS)",
            cost_effectiveness_from_rate(&SystemCost::ramsan(), 300_000.0),
        ),
        (
            "BerkeleyDB on disk",
            cost_effectiveness(&SystemCost::disk_bdb(), bdb_result.mean_per_op()),
        ),
    ];

    let widths = [36, 14, 14, 12, 14];
    print_header(&["system", "latency (ms)", "ops/sec", "cost ($)", "ops/sec/$"], &widths);
    for (label, eff) in rows {
        print_row(
            &[
                label.to_string(),
                format!("{:.4}", eff.mean_latency_ms),
                format!("{:.0}", eff.ops_per_second),
                format!("{:.0}", eff.total_dollars),
                format!("{:.2}", eff.ops_per_second_per_dollar),
            ],
            &widths,
        );
    }
    println!(
        "\nPaper anchors: ~42 lookups/sec/$ and ~420 inserts/sec/$ for the CLAM versus\n\
         ~2.5 ops/sec/$ for the RamSan appliance and well under 1 op/sec/$ for\n\
         BerkeleyDB on disk — one to two orders of magnitude in the CLAM's favour."
    );
}
