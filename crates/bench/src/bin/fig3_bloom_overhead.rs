//! Figure 3: expected lookup I/O overhead vs total Bloom-filter size.
//!
//! Analytical curve from §6.2/§6.4 (`C = (F/B)·(1/2)^(b·s·ln2/F)·c_r`) for
//! 32 GB and 64 GB of flash, 32 bytes effective entry size, evaluated at the
//! paper's configuration point (buffers at their optimum).

use bench::{print_header, print_row};
use bufferhash::analysis::FlashCostModel;
use bufferhash::tuning;
use flashsim::DeviceProfile;

fn main() {
    let model = FlashCostModel::from_profile(&DeviceProfile::transcend_ts32g());
    let s_eff = 32usize; // 16-byte entries at 50% utilisation
    let widths = [16, 20, 20];
    println!("Figure 3: expected I/O overhead vs Bloom filter size");
    println!("(page read cost c_r = {:.3} ms)\n", model.page_read_cost().as_millis_f64());
    print_header(&["bloom size (MB)", "F = 32GB (ms)", "F = 64GB (ms)"], &widths);
    let sizes_mb = [10u64, 20, 50, 100, 200, 400, 800, 1000, 2000, 4000, 8000, 10000];
    for mb in sizes_mb {
        let bloom_bytes = mb << 20;
        let mut cells = vec![format!("{mb}")];
        for f in [32u64 << 30, 64u64 << 30] {
            let b_opt = tuning::optimal_total_buffer_bytes(f, s_eff);
            let overhead =
                model.lookup_expected_overhead(f, b_opt, bloom_bytes, s_eff).as_millis_f64();
            cells.push(format!("{overhead:.4}"));
        }
        print_row(&cells, &widths);
    }
    println!();
    for f_gb in [32u64, 64] {
        let f = f_gb << 30;
        let budget = tuning::bloom_bytes_for_target_overhead(
            f,
            s_eff,
            model.page_read_cost().as_millis_f64(),
            0.01,
        );
        println!(
            "Bloom budget for <= 0.01 ms expected overhead at F = {f_gb} GB: {:.0} MB",
            budget as f64 / (1 << 20) as f64
        );
    }
    println!(
        "\nPaper anchor: ~1 GB of Bloom filters suffices to push the expected I/O\n\
         overhead below 1 ms at F = 32 GB; the curve flattens beyond that (diminishing returns)."
    );
}
