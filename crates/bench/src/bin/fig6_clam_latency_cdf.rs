//! Figure 6: CDFs of CLAM lookup and insert latencies on an Intel SSD, a
//! Transcend SSD and a magnetic disk (40% LSR, interleaved lookups and
//! inserts). Also covers §7.3.2 (the contribution of flash vs disk).

use bench::{
    build_clam, bulk_load, ms, print_cdf, run_mixed_workload_continuing, Medium, TailSummary,
};

fn main() {
    println!("Figure 6: CLAM latency CDFs (40% LSR, equal lookups and inserts)\n");
    for medium in [Medium::IntelSsd, Medium::TranscendSsd, Medium::Disk] {
        let mut clam = build_clam(medium, bench::FLASH_BYTES, bench::DRAM_BYTES);
        // Warm: fill a good part of the table first (batched load).
        bulk_load(&mut clam, 0, 1_600_000);
        clam.reset_stats();
        let mut result = run_mixed_workload_continuing(&mut clam, 40_000, 0.5, 0.4, 12, 1_600_000);
        println!("== BufferHash + {} ==", medium.label());
        println!(
            "  mean lookup {} ms   (p99 {} ms, max {} ms)",
            ms(result.lookups.mean()),
            ms(result.lookups.quantile(0.99)),
            ms(result.lookups.max())
        );
        println!(
            "  mean insert {} ms   (p99 {} ms, max {} ms)",
            ms(result.inserts.mean()),
            ms(result.inserts.quantile(0.99)),
            ms(result.inserts.max())
        );
        println!("  lookup tail: {}", TailSummary::from_recorder(&mut result.lookups));
        println!("  insert tail: {}", TailSummary::from_recorder(&mut result.inserts));
        print_cdf(&format!("lookup latency, BH+{}", medium.label()), &mut result.lookups, 20);
        print_cdf(&format!("insert latency, BH+{}", medium.label()), &mut result.inserts, 20);
        println!();
    }
    println!(
        "Paper anchors: ~62% of lookups are served from DRAM on both SSDs; 99.8% of\n\
         Intel-SSD lookups finish within ~0.2 ms and Transcend stays under ~1 ms;\n\
         BufferHash on disk is an order of magnitude slower for lookups; average\n\
         inserts are a few microseconds everywhere, with rare flush-dominated spikes."
    );
}
