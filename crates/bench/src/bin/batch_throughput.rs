//! Batched vs per-op pipeline throughput on the simulated Intel SSD.
//!
//! Companion to ROADMAP's "batched inserts" item: the same key stream is
//! driven through `Clam::insert` one op at a time and through
//! `Clam::insert_batch` at several batch sizes, and the resulting
//! *simulated* throughputs are compared (host CPU time of the simulation
//! is what `cargo bench batch_ops` measures instead). A lookup phase does
//! the same for `Clam::lookup_batch`, and the §6.1-style closed-form batch
//! model from `bufferhash::analysis` is cross-checked against the
//! simulator.
//!
//! The acceptance bar for the batching work: ≥ 2x insert throughput at
//! batch size 64.
//!
//! `--smoke` runs a reduced op count so CI can keep the harness honest.

use bench::{ms, print_header, print_row, standard_config, workload_key};
use bufferhash::analysis::FlashCostModel;
use bufferhash::{Clam, ClamConfig};
use flashsim::{DeviceProfile, SimDuration, Ssd};

const FULL_INSERTS: u64 = 1_500_000;
const FULL_LOOKUPS: u64 = 200_000;
const SMOKE_INSERTS: u64 = 150_000;
const SMOKE_LOOKUPS: u64 = 20_000;
const BATCH_SIZES: [usize; 4] = [8, 64, 256, 1024];

fn fresh_clam() -> Clam<Ssd> {
    let cfg: ClamConfig = standard_config(bench::FLASH_BYTES, bench::DRAM_BYTES);
    Clam::new(Ssd::intel(bench::FLASH_BYTES).expect("ssd"), cfg).expect("clam")
}

fn kops_per_sec(ops: u64, total: SimDuration) -> f64 {
    ops as f64 / total.as_millis_f64()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (inserts, lookups) =
        if smoke { (SMOKE_INSERTS, SMOKE_LOOKUPS) } else { (FULL_INSERTS, FULL_LOOKUPS) };
    println!(
        "Batched vs per-op CLAM pipeline (Intel SSD, 1/64 scale: {} MiB flash, {} MiB DRAM{})\n",
        bench::FLASH_BYTES >> 20,
        bench::DRAM_BYTES >> 20,
        if smoke { ", smoke mode" } else { "" }
    );

    // ------------------------------------------------------------------
    // Insert phase.
    // ------------------------------------------------------------------
    let mut per_op = fresh_clam();
    let mut per_op_total = SimDuration::ZERO;
    for i in 0..inserts {
        per_op_total += per_op.insert(workload_key(i), i).expect("insert").latency;
    }
    let per_op_rate = kops_per_sec(inserts, per_op_total);

    let widths = [12, 14, 14, 10, 12, 12];
    println!("{inserts} inserts:");
    print_header(
        &["batch", "sim total (ms)", "kops/sim-sec", "speedup", "flushes", "merged wr"],
        &widths,
    );
    print_row(
        &[
            "per-op".into(),
            ms(per_op_total),
            format!("{per_op_rate:.0}"),
            "1.00x".into(),
            format!("{}", per_op.stats().flushes),
            "-".into(),
        ],
        &widths,
    );

    let mut speedup_at_64 = 0.0f64;
    for batch in BATCH_SIZES {
        let mut clam = fresh_clam();
        let ops: Vec<(u64, u64)> = (0..inserts).map(|i| (workload_key(i), i)).collect();
        let mut total = SimDuration::ZERO;
        for chunk in ops.chunks(batch) {
            total += clam.insert_batch(chunk).expect("insert_batch").latency;
        }
        let speedup = per_op_total.as_nanos() as f64 / total.as_nanos().max(1) as f64;
        if batch == 64 {
            speedup_at_64 = speedup;
        }
        print_row(
            &[
                format!("{batch}"),
                ms(total),
                format!("{:.0}", kops_per_sec(inserts, total)),
                format!("{speedup:.2}x"),
                format!("{}", clam.stats().flushes),
                format!("{}", clam.stats().coalesced_flush_writes),
            ],
            &widths,
        );
    }

    // ------------------------------------------------------------------
    // Lookup phase: 50% hits against a batch-loaded index.
    // ------------------------------------------------------------------
    let mut clam = fresh_clam();
    let load: Vec<(u64, u64)> = (0..inserts).map(|i| (workload_key(i), i)).collect();
    for chunk in load.chunks(1024) {
        clam.insert_batch(chunk).expect("load");
    }
    let keys: Vec<u64> = (0..lookups)
        .map(|i| {
            if i % 2 == 0 {
                workload_key((i * 7) % inserts)
            } else {
                bufferhash::hash_with_seed(i, 0xab5e_0171)
            }
        })
        .collect();
    let mut solo_total = SimDuration::ZERO;
    for &k in &keys {
        solo_total += clam.lookup(k).expect("lookup").latency;
    }
    println!("\n{lookups} lookups (~50% hit rate):");
    let widths = [12, 14, 14, 10];
    print_header(&["batch", "sim total (ms)", "kops/sim-sec", "speedup"], &widths);
    print_row(
        &[
            "per-op".into(),
            ms(solo_total),
            format!("{:.0}", kops_per_sec(lookups, solo_total)),
            "1.00x".into(),
        ],
        &widths,
    );
    for batch in BATCH_SIZES {
        let mut total = SimDuration::ZERO;
        for chunk in keys.chunks(batch) {
            total += clam.lookup_batch(chunk).expect("lookup_batch").latency;
        }
        let speedup = solo_total.as_nanos() as f64 / total.as_nanos().max(1) as f64;
        print_row(
            &[
                format!("{batch}"),
                ms(total),
                format!("{:.0}", kops_per_sec(lookups, total)),
                format!("{speedup:.2}x"),
            ],
            &widths,
        );
    }

    println!(
        "(Lookups batch twice over: host dispatch amortizes across the batch, and the\n\
         queued probe pipeline overlaps flash page reads on the SSD's queue lanes, so\n\
         flash-hit batches beat per-op lookups well beyond the dispatch saving alone.)"
    );

    // ------------------------------------------------------------------
    // Closed-form cross-check.
    // ------------------------------------------------------------------
    let model = FlashCostModel::from_profile(&DeviceProfile::intel_x18m());
    let cfg = standard_config(bench::FLASH_BYTES, bench::DRAM_BYTES);
    let buf = cfg.buffer_bytes_per_table as usize;
    let s_eff = (cfg.entry_size as f64 / cfg.max_buffer_utilization) as usize;
    println!(
        "\nClosed-form model (§6.1 extended): predicted insert speedup at batch 64 = {:.2}x, \
         measured {:.2}x",
        model.batch_insert_speedup(buf, s_eff, 64),
        speedup_at_64
    );
    if speedup_at_64 >= 2.0 {
        println!("PASS: batch-64 insert throughput is >= 2x the per-op pipeline");
    } else {
        println!("FAIL: batch-64 insert speedup {speedup_at_64:.2}x is below the 2x target");
    }
}
