//! Figure 9: effective bandwidth improvement of a WAN optimizer vs link
//! speed, for 50% and 15% redundancy traces, with the fingerprint index
//! held in a CLAM or in a BerkeleyDB-style index (both on a Transcend SSD).

use baseline::{BdbConfig, BdbHashIndex};
use bench::{print_header, print_row};
use bufferhash::{Clam, ClamConfig};
use flashsim::{MagneticDisk, Ssd};
use wanopt::{
    generate_trace, BdbStore, ClamStore, CompressionEngine, ContentCache, EngineConfig, Link,
    TraceConfig, TraceObject, WanOptimizer,
};

const FLASH: u64 = 32 << 20;
const DRAM: u64 = 8 << 20;

fn clam_optimizer(link: Link) -> WanOptimizer<ClamStore<Ssd>, MagneticDisk> {
    let cfg = ClamConfig::small_test(FLASH, DRAM).expect("config");
    let clam = Clam::new(Ssd::transcend(FLASH).expect("ssd"), cfg).expect("clam");
    let engine = CompressionEngine::new(
        ClamStore::new(clam),
        ContentCache::new(MagneticDisk::new(256 << 20).expect("disk")),
        EngineConfig::default(),
    );
    WanOptimizer::new(engine, link)
}

fn bdb_optimizer(link: Link) -> WanOptimizer<BdbStore<Ssd>, MagneticDisk> {
    let idx = BdbHashIndex::new(
        Ssd::transcend(FLASH).expect("ssd"),
        BdbConfig { cache_bytes: 1 << 20, ..Default::default() },
    )
    .expect("bdb");
    let engine = CompressionEngine::new(
        BdbStore::new(idx, 1 << 21),
        ContentCache::new(MagneticDisk::new(256 << 20).expect("disk")),
        EngineConfig::default(),
    );
    WanOptimizer::new(engine, link)
}

fn run(objects: &[TraceObject], redundancy_label: &str) {
    println!("-- {redundancy_label} redundancy trace --");
    let widths = [18, 22, 22, 14];
    print_header(&["link (Mbps)", "BufferHash+SSD", "BerkeleyDB+SSD", "ideal"], &widths);
    for mbps in [10.0, 20.0, 100.0, 200.0, 300.0, 400.0] {
        let mut clam = clam_optimizer(Link::mbps(mbps));
        let clam_report = clam.throughput_test(objects).expect("clam run");
        let mut bdb = bdb_optimizer(Link::mbps(mbps));
        let bdb_report = bdb.throughput_test(objects).expect("bdb run");
        print_row(
            &[
                format!("{mbps:.0}"),
                format!("{:.2}", clam_report.improvement_factor()),
                format!("{:.2}", bdb_report.improvement_factor()),
                format!("{:.2}", clam_report.ideal_improvement()),
            ],
            &widths,
        );
    }
    println!();
}

fn main() {
    println!("Figure 9: effective bandwidth improvement vs link speed (Transcend SSD)\n");
    let high = generate_trace(&TraceConfig { num_objects: 30, ..TraceConfig::high_redundancy(30) });
    run(&high, "50%");
    let low = generate_trace(&TraceConfig { num_objects: 30, ..TraceConfig::low_redundancy(30) });
    run(&low, "15%");
    println!(
        "Paper anchors: the BDB-backed optimizer is only effective up to ~10-20 Mbps\n\
         and then *reduces* effective bandwidth (factor < 1); the CLAM-backed\n\
         optimizer stays near the ideal factor through ~100-200 Mbps and degrades\n\
         gracefully beyond; with the low-redundancy trace it keeps helping at even\n\
         higher rates because fewer lookups hit flash."
    );
}
