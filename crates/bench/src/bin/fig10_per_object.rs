//! Figure 10: per-object throughput improvement under heavy load (10 Mbps
//! link, 50% redundancy), for the CLAM-backed and BDB-backed optimizers.

use baseline::{BdbConfig, BdbHashIndex};
use bench::{print_header, print_row};
use bufferhash::{Clam, ClamConfig};
use flashsim::{MagneticDisk, Ssd};
use wanopt::{
    generate_trace, mean_improvement, BdbStore, ClamStore, CompressionEngine, ContentCache,
    EngineConfig, FingerprintStore, Link, ObjectReport, TraceConfig, WanOptimizer,
};

const FLASH: u64 = 32 << 20;

fn report_table(label: &str, reports: &[ObjectReport]) {
    println!("-- {label} --");
    let widths = [14, 14, 14, 16];
    print_header(&["object", "size (KB)", "savings", "improvement"], &widths);
    for r in reports {
        print_row(
            &[
                format!("{}", r.id),
                format!("{}", r.original_bytes / 1024),
                format!("{:.2}", 1.0 - r.compressed_bytes as f64 / r.original_bytes.max(1) as f64),
                format!("{:.2}", r.improvement_factor()),
            ],
            &widths,
        );
    }
    println!("mean per-object improvement: {:.2}\n", mean_improvement(reports));
}

fn run_with<S: FingerprintStore>(store: S, objects: &[wanopt::TraceObject]) -> Vec<ObjectReport> {
    let engine = CompressionEngine::new(
        store,
        ContentCache::new(MagneticDisk::new(256 << 20).expect("disk")),
        EngineConfig::default(),
    );
    let mut optimizer = WanOptimizer::new(engine, Link::mbps(10.0));
    optimizer.load_test(objects).expect("load test")
}

fn main() {
    println!("Figure 10: per-object throughput improvement (10 Mbps, 50% redundancy)\n");
    let objects =
        generate_trace(&TraceConfig { num_objects: 25, ..TraceConfig::high_redundancy(25) });

    let cfg = ClamConfig::small_test(FLASH, 8 << 20).expect("config");
    let clam = Clam::new(Ssd::transcend(FLASH).expect("ssd"), cfg).expect("clam");
    let clam_reports = run_with(ClamStore::new(clam), &objects);
    report_table("BufferHash CLAM + Transcend SSD", &clam_reports);

    let idx = BdbHashIndex::new(
        Ssd::transcend(FLASH).expect("ssd"),
        BdbConfig { cache_bytes: 1 << 20, ..Default::default() },
    )
    .expect("bdb");
    let bdb_reports = run_with(BdbStore::new(idx, 1 << 21), &objects);
    report_table("BerkeleyDB + Transcend SSD", &bdb_reports);

    println!(
        "Paper anchors: with BerkeleyDB many objects (especially small ones) see their\n\
         throughput *reduced* (factor < 1) because index operations delay them; the\n\
         CLAM-based optimizer slows far fewer objects and its mean per-object\n\
         improvement (~3.1x in the paper) clearly beats BDB's (~1.9x)."
    );
}
