//! Table 3: per-operation latency as the lookup fraction of the workload
//! varies, for BufferHash and the BDB-style index on a Transcend SSD
//! (LSR = 0.4 throughout).

use bench::{
    build_bdb, build_clam, bulk_load, print_header, print_row, run_mixed_workload,
    run_mixed_workload_continuing, Medium,
};

fn main() {
    println!("Table 3: per-operation latency vs lookup fraction (Transcend SSD, LSR = 0.4)\n");
    let widths = [18, 22, 22];
    print_header(&["lookup fraction", "BufferHash (ms/op)", "BerkeleyDB (ms/op)"], &widths);
    for &fraction in &[0.0, 0.3, 0.5, 0.7, 1.0] {
        let mut clam = build_clam(Medium::TranscendSsd, bench::FLASH_BYTES, bench::DRAM_BYTES);
        bulk_load(&mut clam, 0, 1_600_000);
        clam.reset_stats();
        let clam_result =
            run_mixed_workload_continuing(&mut clam, 20_000, fraction, 0.4, 32, 1_600_000);

        let mut bdb = build_bdb(Medium::TranscendSsd, bench::FLASH_BYTES);
        run_mixed_workload(&mut bdb, 40_000, 0.0, 0.0, 31);
        let bdb_result = run_mixed_workload_continuing(&mut bdb, 8_000, fraction, 0.4, 32, 40_000);

        print_row(
            &[
                format!("{fraction:.1}"),
                format!("{:.3}", clam_result.mean_per_op().as_millis_f64()),
                format!("{:.3}", bdb_result.mean_per_op().as_millis_f64()),
            ],
            &widths,
        );
    }
    println!(
        "\nPaper anchors: BufferHash gets cheaper as the workload becomes more\n\
         write-heavy (buffered inserts), down to ~0.007 ms/op for pure inserts, while\n\
         BerkeleyDB gets dramatically more expensive (18+ ms/op for pure inserts on\n\
         the Transcend SSD); for pure lookups the gap narrows."
    );
}
