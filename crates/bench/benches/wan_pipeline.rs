//! Criterion benchmarks for the WAN-optimizer pipeline (chunk → fingerprint
//! → index → cache) on the simulated substrate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bufferhash::{Clam, ClamConfig};
use flashsim::{MagneticDisk, Ssd};
use wanopt::{
    generate_trace, ClamStore, CompressionEngine, ContentCache, EngineConfig, TraceConfig,
};

fn bench_wan_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("wan_pipeline");
    group.sample_size(10);
    let objects =
        generate_trace(&TraceConfig { num_objects: 4, ..TraceConfig::high_redundancy(4) });
    let total: usize = objects.iter().map(|o| o.len()).sum();
    group.throughput(Throughput::Bytes(total as u64));
    group.bench_function("process_4_objects_clam", |b| {
        b.iter(|| {
            let cfg = ClamConfig::small_test(16 << 20, 4 << 20).unwrap();
            let clam = Clam::new(Ssd::transcend(16 << 20).unwrap(), cfg).unwrap();
            let mut engine = CompressionEngine::new(
                ClamStore::new(clam),
                ContentCache::new(MagneticDisk::new(64 << 20).unwrap()),
                EngineConfig::default(),
            );
            let mut compressed = 0usize;
            for obj in &objects {
                compressed += engine.process_object(&obj.data).unwrap().compressed_bytes;
            }
            black_box(compressed)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_wan_pipeline);
criterion_main!(benches);
