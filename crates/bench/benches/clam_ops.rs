//! Criterion benchmarks for end-to-end CLAM operations against the
//! simulated devices (these measure host CPU time of the simulation; the
//! simulated latencies themselves are what the figure binaries report).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::{build_clam, run_mixed_workload, workload_key, Medium};

fn bench_clam_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("clam_ops");
    group.sample_size(20);

    group.bench_function("insert_intel_ssd", |b| {
        let mut clam = build_clam(Medium::IntelSsd, 16 << 20, 4 << 20);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(clam.insert(workload_key(i), i))
        })
    });

    group.bench_function("lookup_hit_intel_ssd", |b| {
        let mut clam = build_clam(Medium::IntelSsd, 16 << 20, 4 << 20);
        for i in 0..100_000u64 {
            clam.insert(workload_key(i), i);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 100_000;
            black_box(clam.lookup(workload_key(i)).0)
        })
    });

    group.bench_function("mixed_workload_10k_ops", |b| {
        b.iter(|| {
            let mut clam = build_clam(Medium::IntelSsd, 8 << 20, 2 << 20);
            black_box(run_mixed_workload(&mut clam, 10_000, 0.5, 0.4, 1).mean_per_op())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_clam_ops);
criterion_main!(benches);
