//! Criterion benchmarks for the batched CLAM pipeline (host CPU time of
//! the simulation; the simulated-latency comparison lives in the
//! `batch_throughput` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::{build_clam, workload_key, Medium};

fn bench_batch_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_ops");
    group.sample_size(20);

    group.bench_function("insert_batch_256_intel_ssd", |b| {
        let mut clam = build_clam(Medium::IntelSsd, 16 << 20, 4 << 20);
        let mut i = 0u64;
        b.iter(|| {
            let ops: Vec<(u64, u64)> = (0..256).map(|j| (workload_key(i + j), i + j)).collect();
            i += 256;
            black_box(clam.insert_batch(&ops))
        })
    });

    group.bench_function("lookup_batch_256_intel_ssd", |b| {
        let mut clam = build_clam(Medium::IntelSsd, 16 << 20, 4 << 20);
        let load: Vec<(u64, u64)> = (0..100_000u64).map(|i| (workload_key(i), i)).collect();
        for chunk in load.chunks(1024) {
            clam.insert_batch(chunk);
        }
        let mut i = 0u64;
        b.iter(|| {
            let keys: Vec<u64> = (0..256).map(|j| workload_key((i + j) % 100_000)).collect();
            i += 256;
            black_box(clam.lookup_batch(&keys).0.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_batch_ops);
criterion_main!(benches);
