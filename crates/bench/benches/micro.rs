//! Criterion micro-benchmarks for the in-memory hot paths: cuckoo buffer,
//! Bloom filters, bit-sliced filters, Rabin-Karp chunking and SHA-1.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bufferhash::{BitSlicedBloomSet, BloomFilter, CuckooBuffer};
use wanopt::{chunk_boundaries, ChunkerConfig, Sha1};

fn bench_cuckoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("cuckoo_buffer");
    group.bench_function("insert_4096", |b| {
        b.iter(|| {
            let mut buf = CuckooBuffer::with_byte_budget(128 * 1024, 16, 0.5);
            for i in 0..4096u64 {
                buf.insert(bufferhash::hash_with_seed(i, 1), i);
            }
            black_box(buf.len())
        })
    });
    let mut buf = CuckooBuffer::with_byte_budget(128 * 1024, 16, 0.5);
    for i in 0..4096u64 {
        buf.insert(bufferhash::hash_with_seed(i, 1), i);
    }
    group.bench_function("lookup_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            black_box(buf.get(bufferhash::hash_with_seed(i, 1)))
        })
    });
    group.finish();
}

fn bench_filters(c: &mut Criterion) {
    let mut group = c.benchmark_group("filters");
    let mut bloom = BloomFilter::with_budget(4096, 16.0);
    for i in 0..4096u64 {
        bloom.insert(bufferhash::hash_with_seed(i, 2));
    }
    group.bench_function("bloom_query", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(bloom.contains(bufferhash::hash_with_seed(i, 3)))
        })
    });
    let mut sliced = BitSlicedBloomSet::new(16, 1 << 16, 7);
    for inc in 0..16u64 {
        sliced.push_incarnation((0..4096u64).map(|i| bufferhash::hash_with_seed(i, inc + 10)));
    }
    group.bench_function("bitsliced_query_16_incarnations", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(sliced.query(bufferhash::hash_with_seed(i, 99)).len())
        })
    });
    group.finish();
}

fn bench_content_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("content_pipeline");
    let data: Vec<u8> =
        (0..1_000_000u32).map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8).collect();
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha1_1mb", |b| b.iter(|| black_box(Sha1::digest(&data))));
    group.bench_function("rabin_chunking_1mb", |b| {
        let cfg = ChunkerConfig::paper_default();
        b.iter(|| black_box(chunk_boundaries(&data, &cfg).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_cuckoo, bench_filters, bench_content_pipeline);
criterion_main!(benches);
