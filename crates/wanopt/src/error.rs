//! Error type for the WAN-optimizer crate.

use std::fmt;

/// Errors returned by the WAN optimizer components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WanError {
    /// The fingerprint index failed.
    Index(String),
    /// The content cache failed.
    Cache(String),
    /// Invalid configuration.
    InvalidConfig(String),
}

impl fmt::Display for WanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WanError::Index(e) => write!(f, "fingerprint index error: {e}"),
            WanError::Cache(e) => write!(f, "content cache error: {e}"),
            WanError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for WanError {}

impl From<bufferhash::BufferHashError> for WanError {
    fn from(e: bufferhash::BufferHashError) -> Self {
        WanError::Index(e.to_string())
    }
}

impl From<baseline::BaselineError> for WanError {
    fn from(e: baseline::BaselineError) -> Self {
        WanError::Index(e.to_string())
    }
}

impl From<flashsim::DeviceError> for WanError {
    fn from(e: flashsim::DeviceError) -> Self {
        WanError::Cache(e.to_string())
    }
}

/// Result alias for the crate.
pub type Result<T> = std::result::Result<T, WanError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: WanError = flashsim::DeviceError::DeviceFull.into();
        assert!(e.to_string().contains("full"));
        let e: WanError = baseline::BaselineError::Full.into();
        assert!(e.to_string().contains("full"));
        assert!(WanError::InvalidConfig("x".into()).to_string().contains('x'));
    }
}
