//! The end-to-end WAN optimizer and the paper's two evaluation scenarios.
//!
//! A WAN optimizer sits in front of a WAN link: the connection manager
//! batches bytes into objects, the compression engine removes chunks that
//! were transmitted before, and the network subsystem serialises what is
//! left onto the link (§8). Two measurements drive Figures 9 and 10:
//!
//! * **throughput test** — all objects are available immediately; the
//!   question is how much the optimizer improves the link's effective
//!   capacity (or, at high link rates, whether the index becomes the
//!   bottleneck and *hurts*);
//! * **acceleration under high load** — objects arrive at link rate and
//!   each object's completion time (including index delays) is compared
//!   against sending it uncompressed.

use flashsim::{Device, SimDuration};

use crate::engine::{CompressionEngine, ProcessedObject};
use crate::error::Result;
use crate::network::Link;
use crate::store::FingerprintStore;
use crate::trace::TraceObject;

/// Result of the throughput test (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputReport {
    /// Total bytes offered.
    pub original_bytes: usize,
    /// Total bytes actually sent on the link.
    pub compressed_bytes: usize,
    /// Time to transfer everything without the optimizer.
    pub time_without: SimDuration,
    /// Time to transfer everything with the optimizer (processing and
    /// transmission pipelined).
    pub time_with: SimDuration,
}

impl ThroughputReport {
    /// Effective bandwidth improvement factor (>1 means the optimizer
    /// helps; <1 means it has become the bottleneck).
    pub fn improvement_factor(&self) -> f64 {
        if self.time_with.is_zero() {
            return 1.0;
        }
        self.time_without.as_secs_f64() / self.time_with.as_secs_f64()
    }

    /// The best possible improvement given the achieved compression.
    pub fn ideal_improvement(&self) -> f64 {
        if self.compressed_bytes == 0 {
            return 1.0;
        }
        self.original_bytes as f64 / self.compressed_bytes as f64
    }
}

/// Per-object result of the high-load scenario (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectReport {
    /// Object identifier.
    pub id: u64,
    /// Object size in bytes.
    pub original_bytes: usize,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
    /// Completion time relative to arrival, with the optimizer.
    pub latency_with: SimDuration,
    /// Completion time relative to arrival, without the optimizer.
    pub latency_without: SimDuration,
}

impl ObjectReport {
    /// Per-object throughput improvement factor (the paper's Figure 10
    /// metric): the ratio of achieved throughput with and without the
    /// optimizer.
    pub fn improvement_factor(&self) -> f64 {
        if self.latency_with.is_zero() {
            return 1.0;
        }
        self.latency_without.as_secs_f64() / self.latency_with.as_secs_f64()
    }
}

/// A WAN optimizer: a compression engine in front of a link.
pub struct WanOptimizer<S: FingerprintStore, D: Device> {
    engine: CompressionEngine<S, D>,
    link: Link,
}

impl<S: FingerprintStore, D: Device> WanOptimizer<S, D> {
    /// Creates an optimizer over `engine` attached to `link`.
    pub fn new(engine: CompressionEngine<S, D>, link: Link) -> Self {
        WanOptimizer { engine, link }
    }

    /// The attached link.
    pub fn link(&self) -> Link {
        self.link
    }

    /// The compression engine (for statistics).
    pub fn engine(&self) -> &CompressionEngine<S, D> {
        &self.engine
    }

    /// Mutable access to the compression engine.
    pub fn engine_mut(&mut self) -> &mut CompressionEngine<S, D> {
        &mut self.engine
    }

    /// Scenario 1 (§8): all objects are available at once; measure the total
    /// transfer time with and without the optimizer. Processing (index +
    /// cache work) and transmission are pipelined: the link transmits object
    /// `i` while the engine processes object `i+1`.
    pub fn throughput_test(&mut self, objects: &[TraceObject]) -> Result<ThroughputReport> {
        let mut original = 0usize;
        let mut compressed = 0usize;
        let mut time_without = SimDuration::ZERO;
        let mut proc_done = SimDuration::ZERO;
        let mut tx_done = SimDuration::ZERO;
        for obj in objects {
            let processed = self.engine.process_object(&obj.data)?;
            original += processed.original_bytes;
            compressed += processed.compressed_bytes;
            time_without += self.link.transmit_time(processed.original_bytes);
            // The engine is serial; transmission starts when both the link
            // is free and the object has been processed.
            proc_done += processed.processing_time();
            let tx_time = self.link.transmit_time(processed.compressed_bytes);
            tx_done = tx_done.max(proc_done) + tx_time;
        }
        Ok(ThroughputReport {
            original_bytes: original,
            compressed_bytes: compressed,
            time_without,
            time_with: tx_done,
        })
    }

    /// Scenario 2 (§8): objects arrive back-to-back at link rate (the link
    /// is 100% utilised without compression); measure each object's
    /// completion time with and without the optimizer.
    pub fn load_test(&mut self, objects: &[TraceObject]) -> Result<Vec<ObjectReport>> {
        let mut reports = Vec::with_capacity(objects.len());
        let mut arrival = SimDuration::ZERO;
        let mut engine_free = SimDuration::ZERO;
        let mut link_free = SimDuration::ZERO;
        for obj in objects {
            let uncompressed_tx = self.link.transmit_time(obj.len());
            let processed: ProcessedObject = self.engine.process_object(&obj.data)?;
            // With the optimizer: wait for the engine (serial), process,
            // then wait for the link and transmit the compressed bytes.
            let start_proc = arrival.max(engine_free);
            let proc_done = start_proc + processed.processing_time();
            engine_free = proc_done;
            let start_tx = proc_done.max(link_free);
            let done = start_tx + self.link.transmit_time(processed.compressed_bytes);
            link_free = done;
            reports.push(ObjectReport {
                id: obj.id,
                original_bytes: processed.original_bytes,
                compressed_bytes: processed.compressed_bytes,
                latency_with: done - arrival,
                latency_without: uncompressed_tx,
            });
            // Next object arrives once the uncompressed stream would have
            // delivered this one (the link is fully loaded).
            arrival += uncompressed_tx;
        }
        Ok(reports)
    }
}

/// Mean per-object improvement factor of a load-test run.
pub fn mean_improvement(reports: &[ObjectReport]) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(|r| r.improvement_factor()).sum::<f64>() / reports.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content_cache::ContentCache;
    use crate::engine::EngineConfig;
    use crate::store::{BdbStore, ClamStore};
    use crate::trace::{generate_trace, TraceConfig};
    use baseline::{BdbConfig, BdbHashIndex};
    use bufferhash::{Clam, ClamConfig};
    use flashsim::{MagneticDisk, Ssd};

    fn clam_optimizer(link: Link) -> WanOptimizer<ClamStore<Ssd>, MagneticDisk> {
        let cfg = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
        let clam = Clam::new(Ssd::transcend(8 << 20).unwrap(), cfg).unwrap();
        let engine = CompressionEngine::new(
            ClamStore::new(clam),
            ContentCache::new(MagneticDisk::new(64 << 20).unwrap()),
            EngineConfig::default(),
        );
        WanOptimizer::new(engine, link)
    }

    fn bdb_optimizer(link: Link) -> WanOptimizer<BdbStore<Ssd>, MagneticDisk> {
        let idx = BdbHashIndex::new(
            Ssd::transcend(8 << 20).unwrap(),
            BdbConfig { cache_bytes: 256 * 1024, ..Default::default() },
        )
        .unwrap();
        let engine = CompressionEngine::new(
            BdbStore::new(idx, 1 << 20),
            ContentCache::new(MagneticDisk::new(64 << 20).unwrap()),
            EngineConfig::default(),
        );
        WanOptimizer::new(engine, link)
    }

    fn trace() -> Vec<TraceObject> {
        generate_trace(&TraceConfig { num_objects: 10, ..TraceConfig::high_redundancy(10) })
    }

    #[test]
    fn clam_optimizer_improves_bandwidth_at_low_link_speed() {
        let mut opt = clam_optimizer(Link::mbps(10.0));
        let report = opt.throughput_test(&trace()).unwrap();
        assert!(
            report.improvement_factor() > 1.3,
            "expected a clear improvement, got {}",
            report.improvement_factor()
        );
        assert!(report.improvement_factor() <= report.ideal_improvement() + 0.05);
    }

    #[test]
    fn clam_optimizer_keeps_helping_at_higher_link_speed_than_bdb() {
        let objects = trace();
        let mut clam_fast = clam_optimizer(Link::mbps(100.0));
        let clam_report = clam_fast.throughput_test(&objects).unwrap();
        let mut bdb_fast = bdb_optimizer(Link::mbps(100.0));
        let bdb_report = bdb_fast.throughput_test(&objects).unwrap();
        assert!(
            clam_report.improvement_factor() > bdb_report.improvement_factor(),
            "CLAM {} vs BDB {} at 100 Mbps",
            clam_report.improvement_factor(),
            bdb_report.improvement_factor()
        );
        // At 100 Mbps the BDB-based optimizer is already the bottleneck.
        assert!(bdb_report.improvement_factor() < 1.0);
        assert!(clam_report.improvement_factor() > 1.0);
    }

    #[test]
    fn load_test_reports_per_object_improvements() {
        let objects = trace();
        let mut opt = clam_optimizer(Link::mbps(10.0));
        let reports = opt.load_test(&objects).unwrap();
        assert_eq!(reports.len(), objects.len());
        for r in &reports {
            assert!(r.original_bytes > 0);
            assert!(r.latency_with > SimDuration::ZERO);
        }
        let mean = mean_improvement(&reports);
        assert!(mean > 1.0, "mean per-object improvement {mean}");
    }

    #[test]
    fn bdb_slows_small_objects_under_load_more_than_clam() {
        let objects = trace();
        let mut clam = clam_optimizer(Link::mbps(10.0));
        let mut bdb = bdb_optimizer(Link::mbps(10.0));
        let clam_mean = mean_improvement(&clam.load_test(&objects).unwrap());
        let bdb_mean = mean_improvement(&bdb.load_test(&objects).unwrap());
        assert!(
            clam_mean > bdb_mean,
            "CLAM mean improvement {clam_mean} should exceed BDB's {bdb_mean}"
        );
    }

    #[test]
    fn empty_trace_is_handled() {
        let mut opt = clam_optimizer(Link::mbps(10.0));
        let report = opt.throughput_test(&[]).unwrap();
        assert_eq!(report.original_bytes, 0);
        assert_eq!(report.improvement_factor(), 1.0);
        assert!(opt.load_test(&[]).unwrap().is_empty());
    }
}
