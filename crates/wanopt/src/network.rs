//! WAN link model (the paper's "network sub-system").
//!
//! The paper's prototype transmits with UDP at close to link speed, with
//! congestion control disabled, so the only property that matters is the
//! link's serialisation rate. [`Link`] converts byte counts to transmit
//! times at a configured rate.

use flashsim::SimDuration;

/// A fixed-rate WAN link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Link rate in bits per second.
    pub bits_per_second: f64,
}

impl Link {
    /// A link of the given megabits per second.
    pub fn mbps(rate: f64) -> Self {
        Link { bits_per_second: rate * 1e6 }
    }

    /// A link of the given gigabits per second.
    pub fn gbps(rate: f64) -> Self {
        Link { bits_per_second: rate * 1e9 }
    }

    /// The link rate in Mbps.
    pub fn rate_mbps(&self) -> f64 {
        self.bits_per_second / 1e6
    }

    /// Time to serialise `bytes` onto the link.
    pub fn transmit_time(&self, bytes: usize) -> SimDuration {
        if self.bits_per_second <= 0.0 {
            return SimDuration::ZERO;
        }
        let secs = bytes as f64 * 8.0 / self.bits_per_second;
        SimDuration::from_nanos((secs * 1e9).round() as u64)
    }

    /// Bytes that can be transmitted in `duration`.
    pub fn bytes_in(&self, duration: SimDuration) -> usize {
        (self.bits_per_second * duration.as_secs_f64() / 8.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmit_time_matches_rate() {
        let link = Link::mbps(10.0);
        // 10 Mbps -> 1.25 MB/s; 1.25 MB takes 1 s.
        let t = link.transmit_time(1_250_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
        let fast = Link::mbps(500.0);
        assert!(fast.transmit_time(1_250_000) < t);
    }

    #[test]
    fn gbps_and_mbps_agree() {
        assert_eq!(
            Link::gbps(1.0).transmit_time(1 << 20),
            Link::mbps(1000.0).transmit_time(1 << 20)
        );
        assert!((Link::gbps(0.5).rate_mbps() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_in_inverts_transmit_time() {
        let link = Link::mbps(100.0);
        let bytes = 3_000_000usize;
        let t = link.transmit_time(bytes);
        let back = link.bytes_in(t);
        assert!((back as i64 - bytes as i64).abs() < 100);
    }

    #[test]
    fn zero_rate_is_handled() {
        let link = Link { bits_per_second: 0.0 };
        assert_eq!(link.transmit_time(100), SimDuration::ZERO);
    }
}
