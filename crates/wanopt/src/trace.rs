//! Workload traces for the WAN-optimizer evaluation.
//!
//! The paper replays object-level traces derived from real packet captures
//! (university access link and a busy web server), characterised mainly by
//! their redundancy fraction (15% and 50%) and object-size mix. Those
//! captures are not public, so this module generates synthetic object
//! traces with the same controllable properties — redundancy fraction,
//! object-size distribution and arrival pattern — which §8 notes give
//! qualitatively similar results.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One transferred object (e.g. one HTTP response / connection payload).
#[derive(Debug, Clone)]
pub struct TraceObject {
    /// Identifier within the trace.
    pub id: u64,
    /// Object payload.
    pub data: Vec<u8>,
}

impl TraceObject {
    /// Object size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` for an empty object.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Configuration of the synthetic trace generator.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of objects to generate.
    pub num_objects: usize,
    /// Smallest object size in bytes.
    pub min_object_size: usize,
    /// Largest object size in bytes.
    pub max_object_size: usize,
    /// Fraction of the byte volume that is redundant (copied from content
    /// seen earlier in the trace), in `[0, 1]`.
    pub redundancy: f64,
    /// RNG seed, so traces are reproducible.
    pub seed: u64,
}

impl TraceConfig {
    /// The paper's high-redundancy trace (~50% duplicate bytes).
    pub fn high_redundancy(num_objects: usize) -> Self {
        TraceConfig {
            num_objects,
            min_object_size: 64 * 1024,
            max_object_size: 1024 * 1024,
            redundancy: 0.5,
            seed: 42,
        }
    }

    /// The paper's low-redundancy trace (~15% duplicate bytes).
    pub fn low_redundancy(num_objects: usize) -> Self {
        TraceConfig { redundancy: 0.15, ..Self::high_redundancy(num_objects) }
    }

    /// A trace with an explicit redundancy fraction.
    pub fn with_redundancy(num_objects: usize, redundancy: f64) -> Self {
        TraceConfig { redundancy: redundancy.clamp(0.0, 1.0), ..Self::high_redundancy(num_objects) }
    }
}

/// Generates a synthetic object trace.
///
/// Redundancy is produced the way WAN traffic produces it: objects are
/// concatenations of multi-kilobyte *segments* (attachments, web objects,
/// file regions), and with probability `redundancy` a segment is a
/// byte-identical repeat of one sent earlier in the trace. Because repeated
/// segments are large relative to the chunker's average chunk size,
/// content-defined chunking rediscovers most of the duplicate bytes
/// regardless of how the segments are packed into objects.
pub fn generate_trace(config: &TraceConfig) -> Vec<TraceObject> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut objects: Vec<TraceObject> = Vec::with_capacity(config.num_objects);
    // Pool of previously emitted segments that later objects may repeat.
    let mut pool: Vec<Vec<u8>> = Vec::new();
    let min = config.min_object_size.max(1024);
    let max = config.max_object_size.max(min + 1);

    for id in 0..config.num_objects as u64 {
        let size = rng.gen_range(min..max);
        let mut data = Vec::with_capacity(size);
        while data.len() < size {
            let remaining = size - data.len();
            let reuse = !pool.is_empty() && rng.gen_bool(config.redundancy);
            if reuse {
                let src = &pool[rng.gen_range(0..pool.len())];
                let take = src.len().min(remaining);
                data.extend_from_slice(&src[..take]);
            } else {
                // Fresh (unique) segment, large enough that content-defined
                // chunking resynchronises well inside it when repeated.
                let seg_len =
                    rng.gen_range(24 * 1024usize..=96 * 1024).min(remaining.max(4 * 1024));
                let mut segment = vec![0u8; seg_len];
                rng.fill(&mut segment[..]);
                let take = segment.len().min(remaining);
                data.extend_from_slice(&segment[..take]);
                pool.push(segment);
                // Bound generator memory for very long traces.
                if pool.len() > 512 {
                    pool.remove(rng.gen_range(0..256));
                }
            }
        }
        objects.push(TraceObject { id, data });
    }
    objects
}

/// Measures the redundancy a content-defined-chunking deduplicator can
/// discover in the trace: the fraction of bytes belonging to chunks whose
/// fingerprint was already seen earlier in the trace.
pub fn measured_block_redundancy(objects: &[TraceObject]) -> f64 {
    use std::collections::HashSet;
    let cfg = crate::rabin::ChunkerConfig::paper_default();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut total = 0usize;
    let mut dup = 0usize;
    for obj in objects {
        for (start, end) in crate::rabin::chunk_boundaries(&obj.data, &cfg) {
            let fp = crate::sha1::Sha1::digest(&obj.data[start..end]).fingerprint64();
            total += end - start;
            if !seen.insert(fp) {
                dup += end - start;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        dup as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_requested_shape() {
        let cfg = TraceConfig { num_objects: 20, ..TraceConfig::high_redundancy(20) };
        let objs = generate_trace(&cfg);
        assert_eq!(objs.len(), 20);
        for o in &objs {
            assert!(o.len() >= cfg.min_object_size);
            assert!(o.len() <= cfg.max_object_size);
        }
    }

    #[test]
    fn traces_are_reproducible() {
        let cfg = TraceConfig::high_redundancy(5);
        let a = generate_trace(&cfg);
        let b = generate_trace(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data, y.data);
        }
    }

    #[test]
    fn high_redundancy_trace_is_more_redundant_than_low() {
        let high = generate_trace(&TraceConfig::high_redundancy(25));
        let low = generate_trace(&TraceConfig::low_redundancy(25));
        let rh = measured_block_redundancy(&high);
        let rl = measured_block_redundancy(&low);
        assert!(rh > rl + 0.1, "high {rh} should exceed low {rl}");
        assert!(rh > 0.3, "high-redundancy trace should contain substantial duplication ({rh})");
        assert!(rl < 0.3, "low-redundancy trace too redundant ({rl})");
    }

    #[test]
    fn zero_redundancy_trace_has_no_duplicates() {
        let cfg = TraceConfig::with_redundancy(10, 0.0);
        let objs = generate_trace(&cfg);
        assert!(measured_block_redundancy(&objs) < 0.02);
    }
}
