//! # wanopt — a WAN optimizer built on CLAM fingerprint indexes
//!
//! The paper's flagship application (§3, §8): a WAN optimizer that
//! fingerprints content-defined chunks of every transferred object, looks
//! the fingerprints up in a very large hash table, and suppresses chunks the
//! far side has already received. This crate implements the whole pipeline:
//!
//! * [`rabin`] / [`sha1`] — content-defined chunking and SHA-1 fingerprints;
//! * [`FingerprintStore`] — the index abstraction, with CLAM-, BerkeleyDB-
//!   and DRAM-backed implementations;
//! * [`ContentCache`] — the on-disk chunk store;
//! * [`CompressionEngine`] — per-object deduplication;
//! * [`WanOptimizer`] — the end-to-end system plus the paper's two
//!   evaluation scenarios (throughput test, acceleration under load);
//! * [`trace`] — synthetic object traces with controllable redundancy.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod content_cache;
mod engine;
mod error;
mod network;
mod optimizer;
pub mod rabin;
pub mod sha1;
mod store;
pub mod trace;

pub use content_cache::ContentCache;
pub use engine::{
    CompressionEngine, EngineConfig, ProcessedObject, LITERAL_HEADER_BYTES, MATCH_TOKEN_BYTES,
};
pub use error::{Result, WanError};
pub use network::Link;
pub use optimizer::{mean_improvement, ObjectReport, ThroughputReport, WanOptimizer};
pub use rabin::{chunk_boundaries, ChunkerConfig, RabinHasher, WINDOW_SIZE};
pub use sha1::{Sha1, Sha1Digest};
pub use store::{BdbStore, ClamStore, DramStore, FingerprintStore};
pub use trace::{generate_trace, measured_block_redundancy, TraceConfig, TraceObject};
