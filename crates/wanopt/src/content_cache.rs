//! The compression engine's content cache.
//!
//! Chunks whose fingerprints were not found in the index are appended to a
//! large content cache kept on a magnetic disk (§8's compression engine).
//! The cache is an append-only circular log: writes are sequential (cheap
//! even on disk), and the returned address is what the fingerprint index
//! stores as its value.

use flashsim::{Device, SimDuration};

use crate::error::{Result, WanError};

/// An append-only, circular chunk store on a device.
pub struct ContentCache<D: Device> {
    device: D,
    capacity: u64,
    write_offset: u64,
    /// Total bytes ever appended (addresses are monotone; modulo capacity
    /// gives the physical position).
    total_written: u64,
}

impl<D: Device> ContentCache<D> {
    /// Creates a cache over the whole device.
    pub fn new(device: D) -> Self {
        let capacity = device.geometry().capacity;
        ContentCache { device, capacity, write_offset: 0, total_written: 0 }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Total bytes appended so far.
    pub fn total_written(&self) -> u64 {
        self.total_written
    }

    /// Access to the underlying device.
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Appends a chunk, returning its address and the simulated latency.
    pub fn append(&mut self, chunk: &[u8]) -> Result<(u64, SimDuration)> {
        if chunk.is_empty() {
            return Ok((self.total_written, SimDuration::ZERO));
        }
        if chunk.len() as u64 > self.capacity {
            return Err(WanError::Cache(format!(
                "chunk of {} bytes exceeds cache capacity {}",
                chunk.len(),
                self.capacity
            )));
        }
        // Wrap to the start if the chunk does not fit in the remaining tail.
        if self.write_offset + chunk.len() as u64 > self.capacity {
            self.total_written += self.capacity - self.write_offset;
            self.write_offset = 0;
        }
        let address = self.total_written;
        let latency = self.device.write_at(self.write_offset, chunk)?;
        self.write_offset += chunk.len() as u64;
        self.total_written += chunk.len() as u64;
        Ok((address, latency))
    }

    /// Reads `len` bytes at `address` (an address previously returned by
    /// [`append`](Self::append)).
    pub fn read(&mut self, address: u64, len: usize) -> Result<(Vec<u8>, SimDuration)> {
        if address + len as u64 > self.total_written {
            return Err(WanError::Cache(format!(
                "read of {len} bytes at {address} beyond written extent {}",
                self.total_written
            )));
        }
        if self.total_written - address > self.capacity {
            return Err(WanError::Cache(format!("address {address} has been overwritten")));
        }
        let physical = address % self.capacity;
        let mut out = vec![0u8; len];
        let latency = if physical + len as u64 <= self.capacity {
            self.device.read_at(physical, &mut out)?
        } else {
            // The chunk never straddles the wrap point (append wraps first),
            // but handle it defensively for robustness.
            let first = (self.capacity - physical) as usize;
            let l1 = self.device.read_at(physical, &mut out[..first])?;
            let l2 = self.device.read_at(0, &mut out[first..])?;
            l1 + l2
        };
        Ok((out, latency))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashsim::MagneticDisk;

    fn cache() -> ContentCache<MagneticDisk> {
        ContentCache::new(MagneticDisk::new(1 << 20).unwrap())
    }

    #[test]
    fn append_then_read_round_trips() {
        let mut c = cache();
        let chunk: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        let (addr, _) = c.append(&chunk).unwrap();
        let (back, _) = c.read(addr, chunk.len()).unwrap();
        assert_eq!(back, chunk);
    }

    #[test]
    fn sequential_appends_are_cheap_on_disk() {
        let mut c = cache();
        let chunk = vec![7u8; 8192];
        let (_, first) = c.append(&chunk).unwrap();
        let (_, second) = c.append(&chunk).unwrap();
        // After the first positioning, appends stream at media rate.
        assert!(second <= first);
        assert!(second < SimDuration::from_millis(2));
    }

    #[test]
    fn wraps_around_when_full() {
        let mut c = cache();
        let chunk = vec![1u8; 200_000];
        let mut last_addr = 0;
        for _ in 0..8 {
            let (addr, _) = c.append(&chunk).unwrap();
            last_addr = addr;
        }
        // Early addresses have been overwritten.
        assert!(c.read(0, 10).is_err());
        // The most recent chunk is still readable.
        let (back, _) = c.read(last_addr, chunk.len()).unwrap();
        assert_eq!(back, chunk);
    }

    #[test]
    fn oversized_chunks_and_bad_reads_are_rejected() {
        let mut c = cache();
        assert!(c.append(&vec![0u8; 2 << 20]).is_err());
        assert!(c.read(0, 10).is_err()); // nothing written yet
        let _ = c.append(&[1, 2, 3]).unwrap();
        assert!(c.read(0, 10).is_err()); // beyond written extent
    }

    #[test]
    fn empty_chunk_is_a_noop() {
        let mut c = cache();
        let (addr, lat) = c.append(&[]).unwrap();
        assert_eq!(addr, 0);
        assert_eq!(lat, SimDuration::ZERO);
    }
}
