//! The fingerprint index abstraction.
//!
//! The compression engine needs a large hash table mapping chunk
//! fingerprints to content-cache addresses. The paper evaluates two
//! implementations — a CLAM and a Berkeley-DB index — and §1 also compares
//! against DRAM appliances. [`FingerprintStore`] is the common interface so
//! the optimizer code is identical for all of them.

use std::collections::{HashSet, VecDeque};

use baseline::{BdbHashIndex, DramHashStore};
use bufferhash::Clam;
use flashsim::{Device, SimDuration};

use crate::error::Result;

/// A large fingerprint → address index with simulated per-operation latency.
///
/// Besides the per-op methods, stores expose a batched interface used by
/// the compression engine and the dedup path, which look up and insert one
/// batch of chunk fingerprints per object. The default implementations
/// fall back to per-op loops; backends with a real batch pipeline (the
/// CLAM) override them to amortize per-op overhead.
pub trait FingerprintStore {
    /// Inserts (or updates) a fingerprint, returning the simulated latency.
    fn insert(&mut self, fingerprint: u64, address: u64) -> Result<SimDuration>;

    /// Looks up a fingerprint, returning the stored address (if any) and the
    /// simulated latency.
    fn lookup(&mut self, fingerprint: u64) -> Result<(Option<u64>, SimDuration)>;

    /// Inserts a batch of (fingerprint, address) pairs, returning the total
    /// simulated latency. Defaults to a per-op loop.
    fn insert_batch(&mut self, ops: &[(u64, u64)]) -> Result<SimDuration> {
        let mut total = SimDuration::ZERO;
        for &(fingerprint, address) in ops {
            total += self.insert(fingerprint, address)?;
        }
        Ok(total)
    }

    /// Looks up a batch of fingerprints, returning the stored addresses in
    /// input order and the total simulated latency. Defaults to a per-op
    /// loop.
    fn lookup_batch(&mut self, fingerprints: &[u64]) -> Result<(Vec<Option<u64>>, SimDuration)> {
        let mut values = Vec::with_capacity(fingerprints.len());
        let mut total = SimDuration::ZERO;
        for &fingerprint in fingerprints {
            let (value, latency) = self.lookup(fingerprint)?;
            values.push(value);
            total += latency;
        }
        Ok((values, total))
    }

    /// Human-readable description (used in benchmark output).
    fn name(&self) -> String;
}

/// A [`FingerprintStore`] backed by a CLAM (BufferHash on DRAM + flash).
pub struct ClamStore<D: Device> {
    clam: Clam<D>,
}

impl<D: Device> ClamStore<D> {
    /// Wraps a CLAM.
    pub fn new(clam: Clam<D>) -> Self {
        ClamStore { clam }
    }

    /// Access to the wrapped CLAM (e.g. for statistics).
    pub fn clam(&self) -> &Clam<D> {
        &self.clam
    }

    /// Mutable access to the wrapped CLAM.
    pub fn clam_mut(&mut self) -> &mut Clam<D> {
        &mut self.clam
    }
}

impl<D: Device> FingerprintStore for ClamStore<D> {
    fn insert(&mut self, fingerprint: u64, address: u64) -> Result<SimDuration> {
        Ok(self.clam.insert(fingerprint, address)?.latency)
    }

    fn lookup(&mut self, fingerprint: u64) -> Result<(Option<u64>, SimDuration)> {
        let out = self.clam.lookup(fingerprint)?;
        Ok((out.value, out.latency))
    }

    fn insert_batch(&mut self, ops: &[(u64, u64)]) -> Result<SimDuration> {
        Ok(self.clam.insert_batch(ops)?.latency)
    }

    fn lookup_batch(&mut self, fingerprints: &[u64]) -> Result<(Vec<Option<u64>>, SimDuration)> {
        // The CLAM resolves the batch through its queued probe pipeline,
        // so the charged latency is the batch's makespan (flash probes
        // overlap on the device queue), not the summed per-key cost.
        let batch = self.clam.lookup_batch(fingerprints)?;
        Ok((batch.values(), batch.latency))
    }

    fn name(&self) -> String {
        format!("BufferHash CLAM on {}", self.clam.with_device(|d| d.name()))
    }
}

/// A [`FingerprintStore`] backed by the Berkeley-DB-style hash index.
///
/// FIFO aging is emulated the way the paper describes for its BDB-based WAN
/// optimizer: an in-memory list of invalidated (aged-out) fingerprints is
/// consulted before lookups, and entries are never rewritten in place.
pub struct BdbStore<D: Device> {
    index: BdbHashIndex<D>,
    /// Insertion order, for FIFO invalidation.
    order: VecDeque<u64>,
    /// Fingerprints that have been aged out.
    invalidated: HashSet<u64>,
    /// Maximum number of live fingerprints before FIFO aging kicks in.
    capacity: usize,
}

impl<D: Device> BdbStore<D> {
    /// Wraps a BDB-style index, aging out fingerprints FIFO beyond
    /// `capacity` live entries.
    pub fn new(index: BdbHashIndex<D>, capacity: usize) -> Self {
        BdbStore {
            index,
            order: VecDeque::new(),
            invalidated: HashSet::new(),
            capacity: capacity.max(1),
        }
    }

    /// Access to the wrapped index.
    pub fn index(&self) -> &BdbHashIndex<D> {
        &self.index
    }

    /// Mutable access to the wrapped index.
    pub fn index_mut(&mut self) -> &mut BdbHashIndex<D> {
        &mut self.index
    }
}

impl<D: Device> FingerprintStore for BdbStore<D> {
    fn insert(&mut self, fingerprint: u64, address: u64) -> Result<SimDuration> {
        let latency = self.index.insert(fingerprint, address)?;
        self.invalidated.remove(&fingerprint);
        self.order.push_back(fingerprint);
        while self.order.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.invalidated.insert(old);
            }
        }
        Ok(latency)
    }

    fn lookup(&mut self, fingerprint: u64) -> Result<(Option<u64>, SimDuration)> {
        if self.invalidated.contains(&fingerprint) {
            return Ok((None, SimDuration::from_nanos(500)));
        }
        let (value, latency) = self.index.lookup(fingerprint)?;
        Ok((value, latency))
    }

    fn name(&self) -> String {
        format!("BerkeleyDB hash index on {}", self.index.device().name())
    }
}

/// A [`FingerprintStore`] backed by a DRAM-only hash table (RamSan-class
/// appliance or host DRAM), used for the cost comparison.
pub struct DramStore {
    store: DramHashStore,
}

impl DramStore {
    /// Wraps a DRAM store.
    pub fn new(store: DramHashStore) -> Self {
        DramStore { store }
    }
}

impl FingerprintStore for DramStore {
    fn insert(&mut self, fingerprint: u64, address: u64) -> Result<SimDuration> {
        Ok(self.store.insert(fingerprint, address))
    }

    fn lookup(&mut self, fingerprint: u64) -> Result<(Option<u64>, SimDuration)> {
        Ok(self.store.lookup(fingerprint))
    }

    fn name(&self) -> String {
        format!("DRAM hash table ({})", self.store.profile().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baseline::BdbConfig;
    use bufferhash::ClamConfig;
    use flashsim::Ssd;

    fn fp(i: u64) -> u64 {
        i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1
    }

    fn check_store<S: FingerprintStore>(store: &mut S) {
        for i in 0..500u64 {
            store.insert(fp(i), i).unwrap();
        }
        for i in 0..500u64 {
            assert_eq!(store.lookup(fp(i)).unwrap().0, Some(i));
        }
        assert_eq!(store.lookup(fp(100_000)).unwrap().0, None);
        assert!(!store.name().is_empty());
    }

    #[test]
    fn clam_store_round_trips() {
        let cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
        let mut s = ClamStore::new(Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap());
        check_store(&mut s);
        assert!(s.clam().stats().inserts.len() >= 500);
    }

    #[test]
    fn bdb_store_round_trips() {
        let idx = BdbHashIndex::new(Ssd::intel(4 << 20).unwrap(), BdbConfig::default()).unwrap();
        let mut s = BdbStore::new(idx, 100_000);
        check_store(&mut s);
    }

    #[test]
    fn dram_store_round_trips() {
        let mut s = DramStore::new(DramHashStore::ramsan());
        check_store(&mut s);
    }

    #[test]
    fn bdb_store_ages_out_old_fingerprints_fifo() {
        let idx = BdbHashIndex::new(Ssd::intel(4 << 20).unwrap(), BdbConfig::default()).unwrap();
        let mut s = BdbStore::new(idx, 100);
        for i in 0..300u64 {
            s.insert(fp(i), i).unwrap();
        }
        // The first 200 fingerprints are invalidated, the last 100 live.
        assert_eq!(s.lookup(fp(0)).unwrap().0, None);
        assert_eq!(s.lookup(fp(150)).unwrap().0, None);
        assert_eq!(s.lookup(fp(250)).unwrap().0, Some(250));
        // Re-inserting an invalidated fingerprint revives it.
        s.insert(fp(0), 7).unwrap();
        assert_eq!(s.lookup(fp(0)).unwrap().0, Some(7));
    }

    #[test]
    fn batch_methods_agree_with_per_op_for_every_backend() {
        let cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
        let mut clam = ClamStore::new(Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap());
        let idx = BdbHashIndex::new(Ssd::intel(4 << 20).unwrap(), BdbConfig::default()).unwrap();
        let mut bdb = BdbStore::new(idx, 100_000);
        let mut dram = DramStore::new(DramHashStore::ramsan());
        fn check<S: FingerprintStore>(store: &mut S) {
            let ops: Vec<(u64, u64)> = (0..800u64).map(|i| (fp(i), i)).collect();
            store.insert_batch(&ops).unwrap();
            let fps: Vec<u64> = (0..1_000u64).map(fp).collect();
            let (values, latency) = store.lookup_batch(&fps).unwrap();
            assert!(latency > SimDuration::ZERO);
            for (i, v) in values.iter().enumerate() {
                let expect = if i < 800 { Some(i as u64) } else { None };
                assert_eq!(*v, expect, "{} index {i}", store.name());
                assert_eq!(store.lookup(fp(i as u64)).unwrap().0, expect);
            }
        }
        check(&mut clam);
        check(&mut bdb);
        check(&mut dram);
        // The CLAM actually routed through the batched pipeline.
        assert_eq!(clam.clam().stats().batched_inserts, 800);
        assert_eq!(clam.clam().stats().batched_lookups, 1_000);
    }

    #[test]
    fn clam_store_is_faster_than_bdb_store_for_inserts() {
        let cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
        let mut clam = ClamStore::new(Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap());
        let idx = BdbHashIndex::new(
            Ssd::intel(4 << 20).unwrap(),
            BdbConfig { cache_bytes: 64 * 1024, ..Default::default() },
        )
        .unwrap();
        let mut bdb = BdbStore::new(idx, 1 << 20);
        let mut clam_total = SimDuration::ZERO;
        let mut bdb_total = SimDuration::ZERO;
        for i in 0..5_000u64 {
            clam_total += clam.insert(fp(i), i).unwrap();
            bdb_total += bdb.insert(fp(i), i).unwrap();
        }
        assert!(
            clam_total * 5 < bdb_total,
            "CLAM inserts ({clam_total}) should be much cheaper than BDB inserts ({bdb_total})"
        );
    }
}
