//! The compression engine (CE).
//!
//! For each arriving object the engine computes content-defined chunks and
//! their SHA-1 fingerprints, looks every fingerprint up in the fingerprint
//! index, replaces matched chunks with small references, appends new chunks
//! to the content cache and inserts their fingerprints into the index
//! (§8). The simulated cost of an object is the sum of the index and cache
//! latencies it incurred (the paper emulates a high-speed connection
//! manager by precomputing chunks and SHA-1 hashes, so chunking CPU time is
//! excluded by default and can be enabled explicitly).
//!
//! Index traffic is batched per object: all chunk fingerprints are looked
//! up in one [`FingerprintStore::lookup_batch`] call and the fingerprints
//! of new chunks are registered with one
//! [`FingerprintStore::insert_batch`], so a CLAM-backed index amortizes its
//! per-op overhead across the object's chunks. The compressed output is
//! identical to the per-op formulation: a chunk repeated *within* one
//! object still counts as matched from its second occurrence on, exactly
//! as if each fingerprint had been inserted eagerly.

use std::collections::HashSet;

use flashsim::{Device, SimDuration};

use crate::content_cache::ContentCache;
use crate::error::Result;
use crate::rabin::{chunk_boundaries, ChunkerConfig};
use crate::sha1::Sha1;
use crate::store::FingerprintStore;

/// Size of the reference token emitted for a matched chunk (fingerprint +
/// length), mirroring shim headers in commercial WAN optimizers.
pub const MATCH_TOKEN_BYTES: usize = 16;
/// Per-literal-chunk header bytes in the compressed representation.
pub const LITERAL_HEADER_BYTES: usize = 4;

/// Per-object processing outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessedObject {
    /// Object size before compression.
    pub original_bytes: usize,
    /// Size after duplicate chunks were replaced by references.
    pub compressed_bytes: usize,
    /// Number of chunks the object was divided into.
    pub chunks: usize,
    /// Chunks found in the fingerprint index.
    pub matched_chunks: usize,
    /// Simulated time spent in fingerprint lookups and insertions.
    pub index_time: SimDuration,
    /// Simulated time spent appending new chunks to the content cache.
    pub cache_time: SimDuration,
    /// Simulated CPU time for chunking and hashing (zero unless enabled).
    pub cpu_time: SimDuration,
}

impl ProcessedObject {
    /// Total processing time charged to the object.
    pub fn processing_time(&self) -> SimDuration {
        self.index_time + self.cache_time + self.cpu_time
    }

    /// Fraction of bytes eliminated.
    pub fn savings(&self) -> f64 {
        if self.original_bytes == 0 {
            0.0
        } else {
            1.0 - self.compressed_bytes as f64 / self.original_bytes as f64
        }
    }
}

/// Configuration of the compression engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Chunking parameters.
    pub chunker: ChunkerConfig,
    /// CPU cost per byte for Rabin fingerprinting + SHA-1, in nanoseconds.
    /// Zero reproduces the paper's methodology (pre-computed fingerprints).
    pub cpu_ns_per_byte: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { chunker: ChunkerConfig::paper_default(), cpu_ns_per_byte: 0.0 }
    }
}

/// The compression engine: fingerprint index + content cache + chunker.
pub struct CompressionEngine<S: FingerprintStore, D: Device> {
    store: S,
    cache: ContentCache<D>,
    config: EngineConfig,
}

impl<S: FingerprintStore, D: Device> CompressionEngine<S, D> {
    /// Creates an engine over a fingerprint store and a content cache.
    pub fn new(store: S, cache: ContentCache<D>, config: EngineConfig) -> Self {
        CompressionEngine { store, cache, config }
    }

    /// The fingerprint store (for statistics).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the fingerprint store.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// The content cache.
    pub fn cache(&self) -> &ContentCache<D> {
        &self.cache
    }

    /// Processes one object: deduplicate, record new content, and report
    /// the compressed size and simulated processing time.
    ///
    /// All of the object's fingerprints are looked up in one batch and the
    /// fingerprints of new chunks are inserted in one batch, so CLAM-backed
    /// indexes pay the per-op dispatch overhead once per object instead of
    /// once per chunk.
    pub fn process_object(&mut self, data: &[u8]) -> Result<ProcessedObject> {
        let boundaries = chunk_boundaries(data, &self.config.chunker);
        let mut out = ProcessedObject {
            original_bytes: data.len(),
            compressed_bytes: 0,
            chunks: boundaries.len(),
            matched_chunks: 0,
            index_time: SimDuration::ZERO,
            cache_time: SimDuration::ZERO,
            cpu_time: SimDuration::from_nanos(
                (self.config.cpu_ns_per_byte * data.len() as f64) as u64,
            ),
        };
        let fingerprints: Vec<u64> = boundaries
            .iter()
            .map(|&(start, end)| Sha1::digest(&data[start..end]).fingerprint64())
            .collect();
        let (hits, lookup_time) = self.store.lookup_batch(&fingerprints)?;
        out.index_time += lookup_time;
        // Chunks repeated within this object match from their second
        // occurrence on (the eager formulation would have inserted them
        // already), so track what this object adds as it goes.
        let mut inserts: Vec<(u64, u64)> = Vec::new();
        let mut new_this_object = HashSet::new();
        for (i, &(start, end)) in boundaries.iter().enumerate() {
            let chunk = &data[start..end];
            if hits[i].is_some() || new_this_object.contains(&fingerprints[i]) {
                out.matched_chunks += 1;
                out.compressed_bytes += MATCH_TOKEN_BYTES;
            } else {
                out.compressed_bytes += chunk.len() + LITERAL_HEADER_BYTES;
                let (address, cache_time) = self.cache.append(chunk)?;
                out.cache_time += cache_time;
                inserts.push((fingerprints[i], address));
                new_this_object.insert(fingerprints[i]);
            }
        }
        out.index_time += self.store.insert_batch(&inserts)?;
        Ok(out)
    }

    /// Verifies that every matched chunk of `data` can be materialised from
    /// the content cache (i.e. the compressed form is reconstructable).
    /// Returns the number of chunks verified.
    pub fn verify_reconstruction(&mut self, data: &[u8]) -> Result<usize> {
        let boundaries = chunk_boundaries(data, &self.config.chunker);
        let mut verified = 0usize;
        for &(start, end) in &boundaries {
            let chunk = &data[start..end];
            let fingerprint = Sha1::digest(chunk).fingerprint64();
            if let (Some(address), _) = self.store.lookup(fingerprint)? {
                if let Ok((bytes, _)) = self.cache.read(address, chunk.len()) {
                    if bytes == chunk {
                        verified += 1;
                    }
                }
            }
        }
        Ok(verified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ClamStore;
    use crate::trace::{generate_trace, TraceConfig};
    use bufferhash::{Clam, ClamConfig};
    use flashsim::{MagneticDisk, Ssd};

    fn engine() -> CompressionEngine<ClamStore<Ssd>, MagneticDisk> {
        let cfg = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
        let clam = Clam::new(Ssd::intel(8 << 20).unwrap(), cfg).unwrap();
        CompressionEngine::new(
            ClamStore::new(clam),
            ContentCache::new(MagneticDisk::new(64 << 20).unwrap()),
            EngineConfig::default(),
        )
    }

    #[test]
    fn duplicate_objects_compress_almost_entirely() {
        let mut e = engine();
        let trace = generate_trace(&TraceConfig::with_redundancy(1, 0.0));
        let obj = &trace[0].data;
        let first = e.process_object(obj).unwrap();
        assert_eq!(first.matched_chunks, 0);
        assert!(first.compressed_bytes >= obj.len());
        // The same object again: every chunk matches.
        let second = e.process_object(obj).unwrap();
        assert_eq!(second.matched_chunks, second.chunks);
        assert!(second.savings() > 0.95, "savings {}", second.savings());
    }

    #[test]
    fn unique_data_does_not_compress() {
        let mut e = engine();
        let trace = generate_trace(&TraceConfig::with_redundancy(3, 0.0));
        for obj in &trace {
            let p = e.process_object(&obj.data).unwrap();
            assert!(p.savings() < 0.05, "unexpected savings {}", p.savings());
        }
    }

    #[test]
    fn redundant_trace_yields_expected_savings() {
        let mut e = engine();
        let trace = generate_trace(&TraceConfig::with_redundancy(12, 0.5));
        let mut original = 0usize;
        let mut compressed = 0usize;
        for obj in &trace {
            let p = e.process_object(&obj.data).unwrap();
            original += p.original_bytes;
            compressed += p.compressed_bytes;
        }
        let savings = 1.0 - compressed as f64 / original as f64;
        assert!(
            (0.25..0.75).contains(&savings),
            "50%-redundancy trace should save roughly half the bytes, saved {savings}"
        );
    }

    #[test]
    fn matched_chunks_are_reconstructable_from_the_cache() {
        let mut e = engine();
        let trace = generate_trace(&TraceConfig::with_redundancy(4, 0.5));
        for obj in &trace {
            e.process_object(&obj.data).unwrap();
        }
        // After processing, every chunk of the last object is in the index
        // and must be reconstructable.
        let verified = e.verify_reconstruction(&trace[3].data).unwrap();
        let chunks = chunk_boundaries(&trace[3].data, &ChunkerConfig::paper_default()).len();
        assert!(verified * 10 >= chunks * 9, "only {verified}/{chunks} chunks reconstructable");
    }

    #[test]
    fn index_traffic_is_batched_per_object() {
        let mut e = engine();
        let trace = generate_trace(&TraceConfig::with_redundancy(3, 0.5));
        let mut chunks = 0usize;
        for obj in &trace {
            chunks += e.process_object(&obj.data).unwrap().chunks;
        }
        let stats = e.store().clam().stats();
        assert_eq!(stats.batched_lookups, chunks as u64, "one batched lookup per chunk");
        assert!(stats.batched_inserts > 0, "new chunks must be registered in batches");
    }

    #[test]
    fn chunks_repeated_within_one_object_count_as_matched() {
        let mut e = engine();
        let trace = generate_trace(&TraceConfig::with_redundancy(1, 0.0));
        // An object that contains the same content twice: the second half's
        // chunks must match the first half's even though nothing was in the
        // index when the object arrived.
        let mut doubled = trace[0].data.clone();
        doubled.extend_from_slice(&trace[0].data);
        let p = e.process_object(&doubled).unwrap();
        assert!(
            p.matched_chunks * 3 >= p.chunks,
            "repeated half should match ({}/{} chunks matched)",
            p.matched_chunks,
            p.chunks
        );
        // And every matched chunk is reconstructable from the cache.
        let verified = e.verify_reconstruction(&doubled).unwrap();
        assert!(verified * 10 >= p.chunks * 9, "only {verified}/{} reconstructable", p.chunks);
    }

    #[test]
    fn processing_time_reflects_index_and_cache_work() {
        let mut e = engine();
        let trace = generate_trace(&TraceConfig::with_redundancy(2, 0.0));
        let p = e.process_object(&trace[0].data).unwrap();
        assert!(p.index_time > SimDuration::ZERO);
        assert!(p.cache_time > SimDuration::ZERO);
        assert_eq!(p.cpu_time, SimDuration::ZERO);
        assert_eq!(p.processing_time(), p.index_time + p.cache_time);
    }

    #[test]
    fn cpu_cost_can_be_enabled() {
        let cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
        let clam = Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap();
        let mut e = CompressionEngine::new(
            ClamStore::new(clam),
            ContentCache::new(MagneticDisk::new(16 << 20).unwrap()),
            EngineConfig { cpu_ns_per_byte: 3.0, ..Default::default() },
        );
        let data = vec![0xA5u8; 100_000];
        let p = e.process_object(&data).unwrap();
        assert!(p.cpu_time >= SimDuration::from_micros(290));
    }
}
