//! Rabin-Karp rolling hash and content-defined chunking.
//!
//! WAN optimizers split byte streams into chunks at *content-defined*
//! boundaries (§8): a window of bytes is hashed with a rolling polynomial
//! hash, and positions where the hash matches a pattern become chunk
//! boundaries. Because boundaries depend only on content, insertions or
//! deletions in a stream shift chunk boundaries only locally, so duplicate
//! data still produces duplicate chunks (and therefore fingerprint hits).

/// Width of the rolling window in bytes.
pub const WINDOW_SIZE: usize = 48;

/// Rolling-hash parameters and derived tables.
#[derive(Debug, Clone)]
pub struct RabinHasher {
    /// Multiplier (an odd constant "irreducible-polynomial-like" base).
    base: u64,
    /// `base^WINDOW_SIZE`, used to remove the outgoing byte.
    base_pow_window: u64,
}

impl Default for RabinHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl RabinHasher {
    /// Creates a hasher with the default base.
    pub fn new() -> Self {
        // FNV-ish prime, odd.
        let base: u64 = 0x0100_0193;
        // The outgoing byte carries weight base^(WINDOW_SIZE - 1).
        let mut pow = 1u64;
        for _ in 0..WINDOW_SIZE - 1 {
            pow = pow.wrapping_mul(base);
        }
        RabinHasher { base, base_pow_window: pow }
    }

    /// Hash of a full window (used to initialise the rolling state).
    pub fn hash_window(&self, window: &[u8]) -> u64 {
        window.iter().fold(0u64, |acc, &b| acc.wrapping_mul(self.base).wrapping_add(b as u64 + 1))
    }

    /// Rolls the hash forward: removes `outgoing` (the byte that leaves the
    /// window) and appends `incoming`.
    #[inline]
    pub fn roll(&self, hash: u64, outgoing: u8, incoming: u8) -> u64 {
        hash.wrapping_sub(self.base_pow_window.wrapping_mul(outgoing as u64 + 1))
            .wrapping_mul(self.base)
            .wrapping_add(incoming as u64 + 1)
    }
}

/// Content-defined chunker configuration.
#[derive(Debug, Clone)]
pub struct ChunkerConfig {
    /// A boundary is declared when `hash % modulus == target`; the expected
    /// chunk size is therefore roughly `modulus` bytes.
    pub modulus: u64,
    /// Boundary target value.
    pub target: u64,
    /// Minimum chunk size (boundaries closer than this are ignored).
    pub min_size: usize,
    /// Maximum chunk size (a boundary is forced at this size).
    pub max_size: usize,
}

impl ChunkerConfig {
    /// The paper's configuration: ~4–8 KiB average chunks.
    pub fn paper_default() -> Self {
        ChunkerConfig { modulus: 4096, target: 13, min_size: 1024, max_size: 16 * 1024 }
    }

    /// A configuration with a given average chunk size.
    pub fn with_average_size(avg: usize) -> Self {
        let avg = avg.max(256);
        ChunkerConfig {
            modulus: avg as u64,
            target: 13 % avg as u64,
            min_size: avg / 4,
            max_size: avg * 4,
        }
    }
}

/// Splits `data` into content-defined chunk ranges (`[start, end)` offsets).
pub fn chunk_boundaries(data: &[u8], config: &ChunkerConfig) -> Vec<(usize, usize)> {
    let mut chunks = Vec::new();
    if data.is_empty() {
        return chunks;
    }
    let hasher = RabinHasher::new();
    let mut start = 0usize;
    let mut hash = 0u64;
    let mut window_filled = false;
    let mut pos = 0usize;
    while pos < data.len() {
        let len_so_far = pos - start + 1;
        // Maintain the rolling hash over the last WINDOW_SIZE bytes.
        if len_so_far <= WINDOW_SIZE {
            hash = hash.wrapping_mul(hasher.base).wrapping_add(data[pos] as u64 + 1);
            window_filled = len_so_far == WINDOW_SIZE;
        } else {
            hash = hasher.roll(hash, data[pos - WINDOW_SIZE], data[pos]);
        }
        let at_boundary = window_filled
            && len_so_far >= config.min_size
            && hash % config.modulus == target_for(config);
        let at_max = len_so_far >= config.max_size;
        if at_boundary || at_max {
            chunks.push((start, pos + 1));
            start = pos + 1;
            hash = 0;
            window_filled = false;
        }
        pos += 1;
    }
    if start < data.len() {
        chunks.push((start, data.len()));
    }
    chunks
}

fn target_for(config: &ChunkerConfig) -> u64 {
    config.target % config.modulus.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn boundaries_cover_the_whole_input_exactly() {
        let data = random_bytes(200_000, 1);
        let cfg = ChunkerConfig::paper_default();
        let chunks = chunk_boundaries(&data, &cfg);
        assert!(!chunks.is_empty());
        assert_eq!(chunks[0].0, 0);
        assert_eq!(chunks.last().unwrap().1, data.len());
        for w in chunks.windows(2) {
            assert_eq!(w[0].1, w[1].0, "chunks must be contiguous");
        }
    }

    #[test]
    fn chunk_sizes_respect_min_and_max() {
        let data = random_bytes(500_000, 2);
        let cfg = ChunkerConfig::paper_default();
        let chunks = chunk_boundaries(&data, &cfg);
        for &(s, e) in &chunks[..chunks.len() - 1] {
            let len = e - s;
            assert!(len >= cfg.min_size, "chunk of {len} below min {}", cfg.min_size);
            assert!(len <= cfg.max_size, "chunk of {len} above max {}", cfg.max_size);
        }
    }

    #[test]
    fn average_chunk_size_is_near_the_modulus() {
        let data = random_bytes(2_000_000, 3);
        let cfg = ChunkerConfig::paper_default();
        let chunks = chunk_boundaries(&data, &cfg);
        let avg = data.len() / chunks.len();
        assert!(
            (2_000..12_000).contains(&avg),
            "average chunk size {avg} far from the ~4–8 KiB target"
        );
    }

    #[test]
    fn chunking_is_deterministic() {
        let data = random_bytes(100_000, 4);
        let cfg = ChunkerConfig::paper_default();
        assert_eq!(chunk_boundaries(&data, &cfg), chunk_boundaries(&data, &cfg));
    }

    #[test]
    fn identical_content_produces_identical_chunks_despite_prefix_shift() {
        // The defining property of content-defined chunking: inserting bytes
        // at the front only perturbs chunking locally, so most chunk
        // *contents* are preserved.
        let shared = random_bytes(400_000, 5);
        let mut shifted = random_bytes(977, 6);
        shifted.extend_from_slice(&shared);
        let cfg = ChunkerConfig::paper_default();
        let a: std::collections::HashSet<Vec<u8>> =
            chunk_boundaries(&shared, &cfg).iter().map(|&(s, e)| shared[s..e].to_vec()).collect();
        let b: Vec<Vec<u8>> =
            chunk_boundaries(&shifted, &cfg).iter().map(|&(s, e)| shifted[s..e].to_vec()).collect();
        let matched = b.iter().filter(|c| a.contains(*c)).count();
        assert!(
            matched * 10 >= b.len() * 7,
            "only {matched}/{} chunks survived a prefix shift",
            b.len()
        );
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let cfg = ChunkerConfig::paper_default();
        assert!(chunk_boundaries(&[], &cfg).is_empty());
        let tiny = vec![7u8; 100];
        let chunks = chunk_boundaries(&tiny, &cfg);
        assert_eq!(chunks, vec![(0, 100)]);
    }

    #[test]
    fn rolling_hash_matches_recomputation() {
        let hasher = RabinHasher::new();
        let data = random_bytes(1000, 7);
        let mut rolling = hasher.hash_window(&data[..WINDOW_SIZE]);
        for pos in WINDOW_SIZE..data.len() {
            rolling = hasher.roll(rolling, data[pos - WINDOW_SIZE], data[pos]);
            let direct = hasher.hash_window(&data[pos + 1 - WINDOW_SIZE..=pos]);
            assert_eq!(rolling, direct, "rolling hash diverged at {pos}");
        }
    }

    #[test]
    fn with_average_size_scales_chunk_sizes() {
        let data = random_bytes(1_000_000, 8);
        let small = chunk_boundaries(&data, &ChunkerConfig::with_average_size(1024));
        let large = chunk_boundaries(&data, &ChunkerConfig::with_average_size(16 * 1024));
        assert!(small.len() > large.len() * 2);
    }
}
