//! SHA-1, implemented from scratch (FIPS 180-1).
//!
//! WAN optimizers and deduplication systems identify content chunks by their
//! SHA-1 digest (§8); the fingerprint inserted into the CLAM is derived from
//! that digest. Implemented locally to avoid pulling in a cryptography
//! dependency — collision resistance against adversaries is not required
//! here, only a stable, well-distributed content hash.

/// A 160-bit SHA-1 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sha1Digest(pub [u8; 20]);

impl Sha1Digest {
    /// The digest as a hex string.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// The first 8 bytes of the digest as a 64-bit fingerprint — the form
    /// stored in the hash tables (the paper stores 32–64 bit fingerprints).
    pub fn fingerprint64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has 20 bytes"))
    }
}

/// Streaming SHA-1 hasher.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a new hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Hashes `data` in one call.
    pub fn digest(data: &[u8]) -> Sha1Digest {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    /// Feeds more data into the hasher.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len += data.len() as u64;
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let block: [u8; 64] = data[..64].try_into().expect("64-byte block");
            self.process_block(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Sha1Digest {
        let bit_len = self.total_len * 8;
        // Padding: 0x80, zeroes, then the 64-bit big-endian length.
        self.update(&[0x80]);
        // `update` adjusted total_len; remember only the original length.
        self.total_len -= 1;
        while self.buffer_len != 56 {
            self.update(&[0]);
            self.total_len -= 1;
        }
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.process_block(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Sha1Digest(out)
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // FIPS 180-1 test vectors.
        assert_eq!(Sha1::digest(b"abc").to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            Sha1::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(Sha1::digest(b"").to_hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        // One million 'a's.
        let million = vec![b'a'; 1_000_000];
        assert_eq!(Sha1::digest(&million).to_hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let one_shot = Sha1::digest(&data);
        let mut h = Sha1::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), one_shot);
    }

    #[test]
    fn fingerprints_differ_for_different_content() {
        let a = Sha1::digest(b"chunk A").fingerprint64();
        let b = Sha1::digest(b"chunk B").fingerprint64();
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }

    #[test]
    fn hex_has_40_characters() {
        assert_eq!(Sha1::digest(b"x").to_hex().len(), 40);
    }
}
