//! WAN optimizer end-to-end: replay a 50%-redundancy trace through a
//! CLAM-backed optimizer at several link speeds and report the effective
//! bandwidth improvement (the paper's §8 scenario 1).
//!
//! Run with: `cargo run --release --example wan_optimizer`

use clam::bufferhash::{Clam, ClamConfig};
use clam::flashsim::{MagneticDisk, Ssd};
use clam::wanopt::{
    generate_trace, ClamStore, CompressionEngine, ContentCache, EngineConfig, Link, TraceConfig,
    WanOptimizer,
};

fn main() {
    let objects = generate_trace(&TraceConfig::high_redundancy(20));
    let total_bytes: usize = objects.iter().map(|o| o.len()).sum();
    println!(
        "Trace: {} objects, {:.1} MB total, ~50% redundant bytes\n",
        objects.len(),
        total_bytes as f64 / 1e6
    );

    for mbps in [10.0, 100.0, 300.0] {
        // Fresh optimizer per link speed so each run starts with a cold index.
        let config = ClamConfig::small_test(32 << 20, 8 << 20).expect("config");
        let clam = Clam::new(Ssd::transcend(32 << 20).expect("ssd"), config).expect("clam");
        let engine = CompressionEngine::new(
            ClamStore::new(clam),
            ContentCache::new(MagneticDisk::new(256 << 20).expect("disk")),
            EngineConfig::default(),
        );
        let mut optimizer = WanOptimizer::new(engine, Link::mbps(mbps));
        let report = optimizer.throughput_test(&objects).expect("throughput test");
        println!(
            "link {:>5.0} Mbps: {:.1} MB sent instead of {:.1} MB, effective bandwidth x{:.2} (ideal x{:.2})",
            mbps,
            report.compressed_bytes as f64 / 1e6,
            report.original_bytes as f64 / 1e6,
            report.improvement_factor(),
            report.ideal_improvement()
        );
    }
    println!(
        "\nThe improvement stays near the ideal factor until the fingerprint index\n\
         becomes the bottleneck at high link speeds — exactly the trade-off the\n\
         paper's Figure 9 explores (and where the CLAM beats BerkeleyDB)."
    );
}
