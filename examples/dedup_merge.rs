//! Deduplicating backup store plus the §3 index-merge experiment.
//!
//! Ingests repeated backups of an edited dataset into a CLAM-backed
//! deduplication store, then merges a second dataset's fingerprint index
//! into it and reports the merge throughput.
//!
//! Run with: `cargo run --release --example dedup_merge`

use clam::bufferhash::{Clam, ClamConfig};
use clam::dedup::{merge_indexes, BackupClient, BackupServer, DedupStore, FingerprintSet};
use clam::flashsim::{MagneticDisk, Ssd};
use clam::wanopt::ClamStore;

fn main() {
    let config = ClamConfig::small_test(32 << 20, 8 << 20).expect("config");
    let clam = Clam::new(Ssd::intel(32 << 20).expect("ssd"), config).expect("clam");
    let store = DedupStore::new(ClamStore::new(clam), MagneticDisk::new(256 << 20).expect("disk"));
    let mut server = BackupServer::new(store);

    // Three clients back up their datasets four times, editing ~64 KiB
    // between backups (the online-backup workload of §3).
    let mut clients: Vec<BackupClient> =
        (0..3).map(|i| BackupClient::new(i, 1 << 20, 99)).collect();
    server.run_rounds(&mut clients, 4, 64 * 1024).expect("backup rounds");
    let stats = server.stats();
    println!(
        "Backups: {} runs, {:.1} MB offered, {:.1} MB stored ({}% deduplicated)",
        stats.backups,
        stats.bytes_offered as f64 / 1e6,
        stats.bytes_stored as f64 / 1e6,
        (stats.dedup_ratio() * 100.0) as u32
    );
    println!(
        "Repository time spent in index + archive work: {:.1} ms (simulated)\n",
        stats.repository_time.as_millis_f64()
    );

    // Merge a second dataset's fingerprint index into the repository index.
    let incoming = FingerprintSet::synthetic(50_000, 0.25, 5, 6);
    let report = merge_indexes(server.store_mut().index_mut(), &incoming).expect("merge");
    println!(
        "Index merge: {} fingerprints, {} already present, {} inserted",
        report.fingerprints, report.already_present, report.inserted
    );
    println!(
        "Merge took {:.2} s simulated ({:.0} fingerprints/s) — the operation the paper\n\
         estimates at ~2 hours with BerkeleyDB and under 2 minutes with a CLAM.",
        report.total_time.as_secs_f64(),
        report.fingerprints_per_second()
    );
}
