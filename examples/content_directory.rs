//! Central directory for a data-oriented network (§3): content names (chunk
//! hashes) resolve to host locations, with sources joining and leaving at a
//! high rate.
//!
//! Run with: `cargo run --release --example content_directory`

use clam::bufferhash::{hash_with_seed, Clam, ClamConfig};
use clam::flashsim::Ssd;

/// Encodes a (host, port-ish) location into the 64-bit value stored in the
/// directory.
fn location(host: u32, shard: u32) -> u64 {
    ((host as u64) << 32) | shard as u64
}

fn main() {
    let config = ClamConfig::small_test(64 << 20, 8 << 20).expect("config");
    let mut directory = Clam::new(Ssd::intel(64 << 20).expect("ssd"), config).expect("clam");

    // 500k content names published by 1000 hosts.
    let names: u64 = 500_000;
    for i in 0..names {
        let name = hash_with_seed(i, 0xc0ffee);
        directory.insert(name, location((i % 1000) as u32, (i % 16) as u32)).expect("publish");
    }

    // Hosts churn: 100k names get re-published from new locations, 50k are
    // withdrawn.
    for i in 0..100_000u64 {
        let name = hash_with_seed(i * 5 % names, 0xc0ffee);
        directory.insert(name, location(9_999, (i % 16) as u32)).expect("re-publish");
    }
    for i in 0..50_000u64 {
        let name = hash_with_seed(i * 7 % names, 0xc0ffee);
        directory.delete(name).expect("withdraw");
    }

    // Resolution workload.
    let mut resolved = 0u64;
    for i in 0..200_000u64 {
        let name = hash_with_seed(i % names, 0xc0ffee);
        if directory.lookup(name).expect("resolve").value.is_some() {
            resolved += 1;
        }
    }

    let stats = directory.stats_mut();
    println!("Content directory on a simulated Intel SSD:");
    println!("  published {} names, resolved {resolved} of 200k queries", names);
    println!(
        "  publish latency: mean {:.4} ms (p99 {:.4} ms)",
        stats.inserts.mean().as_millis_f64(),
        stats.inserts.quantile(0.99).as_millis_f64()
    );
    println!(
        "  resolve latency: mean {:.4} ms (p99 {:.4} ms)",
        stats.lookups.mean().as_millis_f64(),
        stats.lookups.quantile(0.99).as_millis_f64()
    );
    println!(
        "  sustained rate at these latencies: ~{:.0}k operations/second (single threaded)",
        1.0 / stats.lookups.mean().as_secs_f64().max(1e-9) / 1000.0
    );
}
