//! Parameter tuning walkthrough (§6.4): how much DRAM to give to buffers vs
//! Bloom filters, and how many super tables to use, for a target flash size.
//!
//! Run with: `cargo run --release --example parameter_tuning`

use clam::bufferhash::analysis::FlashCostModel;
use clam::bufferhash::{tuning, ClamConfig};
use clam::flashsim::{DeviceProfile, Geometry};

fn main() {
    let flash: u64 = 32 << 30; // the paper's 32 GB prototype
    let entry = 16usize;
    let s_eff = entry * 2; // 50% buffer utilisation -> 32 effective bytes/entry
    let model = FlashCostModel::from_profile(&DeviceProfile::intel_x18m());

    println!(
        "Target: F = {} GB of flash, {}-byte entries (s_eff = {} bytes)\n",
        flash >> 30,
        entry,
        s_eff
    );

    let b_opt = tuning::optimal_total_buffer_bytes(flash, s_eff);
    println!(
        "1. Optimal total buffer memory  B_opt = F/(s·ln²2) = {:.2} GB",
        b_opt as f64 / (1u64 << 30) as f64
    );

    let cr = model.page_read_cost().as_millis_f64();
    for target in [1.0, 0.1, 0.01] {
        let bloom = tuning::bloom_bytes_for_target_overhead(flash, s_eff, cr, target);
        println!(
            "2. Bloom memory for expected lookup I/O overhead <= {:>5.2} ms: {:.2} GB",
            target,
            bloom as f64 / (1u64 << 30) as f64
        );
    }

    println!("\n3. Per-table buffer size vs insert cost (Intel SSD cost model):");
    for kb in [16u64, 64, 128, 256, 1024] {
        let bytes = (kb * 1024) as usize;
        println!(
            "   buffer {:>5} KB: amortized {:.5} ms/insert, worst case {:.3} ms",
            kb,
            model.insert_amortized(bytes, s_eff).as_millis_f64(),
            model.insert_worst_case(bytes).as_millis_f64()
        );
    }

    // Put it together the way `ClamConfig::recommended` does.
    let geometry = Geometry::new(1 << 30, 4096, 256 * 1024).expect("geometry");
    let cfg = ClamConfig::recommended(1 << 30, 256 << 20, geometry).expect("config");
    println!(
        "\n4. ClamConfig::recommended for a 1 GB device with 256 MB DRAM:\n   {} super tables x {} KB buffers, {} incarnations each, {} Bloom hashes (expected FPR {:.5})",
        cfg.num_super_tables(),
        cfg.buffer_bytes_per_table / 1024,
        cfg.incarnations_per_table(),
        cfg.bloom_hashes(),
        cfg.expected_false_positive_rate()
    );
}
