//! Eviction policies in action: the same update-heavy workload run under
//! FIFO, LRU, update-based and priority-based eviction, comparing insert
//! cost and which keys survive (§5.1.2, §7.4).
//!
//! Run with: `cargo run --release --example eviction_policies`

use clam::bufferhash::{hash_with_seed, Clam, ClamConfig, EvictionPolicy};
use clam::flashsim::Ssd;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run(policy: EvictionPolicy, label: &str) {
    let mut config = ClamConfig::small_test(8 << 20, 2 << 20).expect("config");
    config.eviction = policy;
    let mut clam = Clam::new(Ssd::transcend(8 << 20).expect("ssd"), config).expect("clam");

    let mut rng = StdRng::seed_from_u64(13);
    let hot_keys: Vec<u64> = (0..500u64).map(|i| hash_with_seed(i, 1)).collect();
    // Far more data than the CLAM can hold, so eviction happens constantly.
    for i in 0..400_000u64 {
        if rng.gen_bool(0.3) {
            // Updates / uses of a small hot set.
            let k = hot_keys[rng.gen_range(0..hot_keys.len())];
            if rng.gen_bool(0.5) {
                clam.insert(k, i).expect("insert");
            } else {
                clam.lookup(k).expect("lookup");
            }
        } else {
            clam.insert(hash_with_seed(i, 2), i).expect("insert");
        }
    }

    let survivors =
        hot_keys.iter().filter(|&&k| clam.lookup(k).expect("lookup").value.is_some()).count();
    let stats = clam.stats();
    println!(
        "{label:<18} mean insert {:.4} ms | max insert {:>8.3} ms | flushes {:>5} | hot keys surviving {:>3}/500",
        stats.inserts.mean().as_millis_f64(),
        stats.inserts.max().as_millis_f64(),
        stats.flushes,
        survivors
    );
}

fn main() {
    println!("Eviction policies under an update-heavy workload (Transcend SSD):\n");
    run(EvictionPolicy::Fifo, "FIFO");
    run(EvictionPolicy::Lru, "LRU");
    run(EvictionPolicy::UpdateBased, "update-based");
    run(EvictionPolicy::priority_threshold(u64::MAX / 4), "priority-based");
    println!(
        "\nFIFO is the cheapest but lets hot keys age out; LRU keeps recently used keys\n\
         alive by re-inserting them on use; the partial-discard policies retain entries\n\
         at the cost of heavier (occasionally cascading) evictions."
    );
}
