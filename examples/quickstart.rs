//! Quickstart: build a CLAM on a simulated SSD, batch-insert two million
//! fingerprints, look some up (batched and per-op), and print the latency
//! profile.
//!
//! Run with: `cargo run --release --example quickstart`

use clam::bufferhash::{Clam, ClamConfig};
use clam::flashsim::Ssd;

fn main() {
    // A scaled-down version of the paper's 32 GB flash / 4 GB DRAM CLAM:
    // 1/64 scale, i.e. 512 MiB of simulated flash, 64 MiB of DRAM. (The
    // harness ran at 1/512 before the batched insert pipeline made larger
    // fills cheap, and at 1/128 until the read path was batched through
    // the completion ring too.)
    let config = ClamConfig::small_test(512 << 20, 64 << 20).expect("config");
    println!(
        "CLAM configuration: {} super tables, {} incarnations each, {} Bloom hash functions",
        config.num_super_tables(),
        config.incarnations_per_table(),
        config.bloom_hashes()
    );
    let device = Ssd::intel(512 << 20).expect("device");
    let mut clam = Clam::new(device, config).expect("clam");

    // Insert two million (fingerprint -> address) mappings through the
    // batched pipeline: dispatch overhead is paid once per batch and
    // flush writes to contiguous log slots coalesce.
    let n: u64 = 2_000_000;
    let ops: Vec<(u64, u64)> =
        (0..n).map(|i| (clam::bufferhash::hash_with_seed(i, 7), i)).collect();
    for chunk in ops.chunks(1024) {
        clam.insert_batch(chunk).expect("insert_batch");
    }

    // Look up a mix of present and absent keys, batched.
    let keys: Vec<u64> = (0..100_000u64)
        .map(|i| {
            if i % 5 < 2 {
                clam::bufferhash::hash_with_seed(i * 7 % n, 7) // present
            } else {
                clam::bufferhash::hash_with_seed(i, 0xdead) // absent
            }
        })
        .collect();
    let mut hits = 0;
    for chunk in keys.chunks(256) {
        for out in clam.lookup_batch(chunk).expect("lookup_batch") {
            if out.value.is_some() {
                hits += 1;
            }
        }
    }

    let stats = clam.stats_mut();
    println!("\nAfter {n} batched inserts and 100k batched lookups ({hits} hits):");
    println!(
        "  insert latency: mean {:.4} ms, p99 {:.4} ms, max {:.3} ms",
        stats.inserts.mean().as_millis_f64(),
        stats.inserts.quantile(0.99).as_millis_f64(),
        stats.inserts.max().as_millis_f64()
    );
    println!(
        "  lookup latency: mean {:.4} ms, p99 {:.4} ms, max {:.3} ms",
        stats.lookups.mean().as_millis_f64(),
        stats.lookups.quantile(0.99).as_millis_f64(),
        stats.lookups.max().as_millis_f64()
    );
    println!(
        "  buffer flushes: {}, coalesced flush writes: {}, spurious flash reads: {}",
        stats.flushes, stats.coalesced_flush_writes, stats.spurious_flash_reads
    );
    println!(
        "  queued lookups: {} batches, {} probe waves, {} probe reads ({} overlapped on the SSD queue)",
        stats.lookup_batches_submitted,
        stats.lookup_probe_waves,
        stats.lookup_probe_requests,
        stats.lookup_probes_overlapped
    );
}
