//! Quickstart: build a CLAM on a simulated SSD, insert a million
//! fingerprints, look some up, and print the latency profile.
//!
//! Run with: `cargo run --release --example quickstart`

use clam::bufferhash::{Clam, ClamConfig};
use clam::flashsim::Ssd;

fn main() {
    // A scaled-down version of the paper's 32 GB flash / 4 GB DRAM CLAM:
    // 64 MiB of simulated flash, 8 MiB of DRAM.
    let config = ClamConfig::small_test(64 << 20, 8 << 20).expect("config");
    println!(
        "CLAM configuration: {} super tables, {} incarnations each, {} Bloom hash functions",
        config.num_super_tables(),
        config.incarnations_per_table(),
        config.bloom_hashes()
    );
    let device = Ssd::intel(64 << 20).expect("device");
    let mut clam = Clam::new(device, config).expect("clam");

    // Insert a million (fingerprint -> address) mappings.
    let n: u64 = 1_000_000;
    for i in 0..n {
        let fingerprint = clam::bufferhash::hash_with_seed(i, 7);
        clam.insert(fingerprint, i).expect("insert");
    }

    // Look up a mix of present and absent keys.
    let mut hits = 0;
    for i in 0..100_000u64 {
        let key = if i % 5 < 2 {
            clam::bufferhash::hash_with_seed(i * 7 % n, 7) // present
        } else {
            clam::bufferhash::hash_with_seed(i, 0xdead) // absent
        };
        if clam.lookup(key).expect("lookup").value.is_some() {
            hits += 1;
        }
    }

    let stats = clam.stats_mut();
    println!("\nAfter {n} inserts and 100k lookups ({hits} hits):");
    println!(
        "  insert latency: mean {:.4} ms, p99 {:.4} ms, max {:.3} ms",
        stats.inserts.mean().as_millis_f64(),
        stats.inserts.quantile(0.99).as_millis_f64(),
        stats.inserts.max().as_millis_f64()
    );
    println!(
        "  lookup latency: mean {:.4} ms, p99 {:.4} ms, max {:.3} ms",
        stats.lookups.mean().as_millis_f64(),
        stats.lookups.quantile(0.99).as_millis_f64(),
        stats.lookups.max().as_millis_f64()
    );
    println!(
        "  buffer flushes: {}, spurious flash reads: {}",
        stats.flushes, stats.spurious_flash_reads
    );
}
