//! Test-runner configuration, errors and the deterministic generator.

use std::fmt;

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic 64-bit generator (splitmix64) used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from the test's name so every property gets an
    /// independent, reproducible stream.
    pub fn deterministic(test_name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Returns the next random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}
