//! Minimal, dependency-free stand-in for `proptest` (the build environment
//! is offline). It supports the subset this workspace uses:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   inner attribute and `arg in strategy` bindings;
//! * integer-range, [`any`], tuple and [`collection::vec`] strategies;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Failing cases are *not* shrunk; the generator is deterministically
//! seeded per test so failures reproduce exactly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that samples the strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let ($($arg,)+) =
                    ($($crate::Strategy::sample(&($strat), &mut rng),)+);
                let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!("property '{}' failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with an optional formatted message) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}
