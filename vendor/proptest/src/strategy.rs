//! Value-generation strategies (sampling only; no shrinking).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "whole domain" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy covering a type's full domain; build with [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Returns the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
