//! Glob-import surface: `use proptest::prelude::*;`.

pub use crate::strategy::{any, Any, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
