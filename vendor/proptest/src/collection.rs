//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length bound for [`vec()`] (mirrors proptest's `SizeRange`).
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

/// Strategy producing `Vec`s of values from `element`, with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
