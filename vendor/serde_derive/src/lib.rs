//! No-op `Serialize`/`Deserialize` derives for the vendored serde stand-in.
//! Deriving is purely an annotation in this workspace (nothing serializes),
//! so the expansion is empty — which also sidesteps generics handling.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Expands to nothing; accepts any item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts any item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
