//! Minimal, dependency-free stand-in for `serde` (the build environment is
//! offline). The workspace only *derives* `Serialize`/`Deserialize` as
//! forward-looking annotations — nothing actually serializes yet — so the
//! traits are markers and the derives expand to nothing. Swapping in the
//! real `serde` later requires no source changes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Marker for types that may be serialized (no-op stand-in).
pub trait Serialize {}

/// Marker for types that may be deserialized (no-op stand-in).
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
