//! Minimal, dependency-free stand-in for `criterion` (the build
//! environment is offline). It keeps criterion's API shape —
//! `criterion_group!` / `criterion_main!`, benchmark groups, `Bencher::iter`
//! and `Throughput` — and reports mean wall-clock time per iteration. No
//! statistics, warm-up tuning or HTML reports.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` resolves as upstream.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size.unwrap_or(10),
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.sample_size.unwrap_or(10);
        run_benchmark(&name.into(), sample_size, None, &mut f);
        self
    }

    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = Some(n);
        self
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares the volume of work per iteration so the report can show a
    /// rate alongside the latency.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Work volume per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, recording `iters_per_sample` iterations per sample.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up / calibration: aim for samples of at least ~1ms, capped
        // so cargo-test-style invocations stay fast.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_per_sample = iters;
        let samples = self.sample_size.max(1);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher =
        Bencher { samples: Vec::with_capacity(sample_size), sample_size, iters_per_sample: 1 };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let iters = bencher.iters_per_sample * bencher.samples.len() as u64;
    let per_iter = total.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            format!("  {:.1} MiB/s", bytes as f64 / per_iter / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) => format!("  {:.0} elem/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!("{name}: {:.3} µs/iter{rate}", per_iter * 1e6);
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
