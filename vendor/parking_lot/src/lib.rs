//! Minimal, dependency-free stand-in for `parking_lot` (the build
//! environment is offline). Provides [`Mutex`] and [`RwLock`] with
//! `parking_lot`'s non-poisoning API, backed by `std::sync`. A poisoned
//! std lock (a thread panicked while holding it) is recovered rather than
//! propagated, matching `parking_lot` semantics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed — the borrow is exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions cannot fail (no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the rwlock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed — the borrow is exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable usable with [`Mutex`]. Because [`MutexGuard`] is
/// the `std` guard type, this is a thin non-poisoning wrapper over
/// `std::sync::Condvar`: `wait` re-acquires the lock even if another
/// waiter panicked while holding it.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically releases `guard`'s lock and blocks until notified,
    /// returning the re-acquired guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every thread blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_signals_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            ready = cv.wait(ready);
        }
        assert!(*ready);
        t.join().unwrap();
    }

    #[test]
    fn mutex_basic() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                *m2.lock() += 1;
            }
        });
        for _ in 0..100 {
            *m.lock() += 1;
        }
        t.join().unwrap();
        assert_eq!(*m.lock(), 200);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn rwlock_try_paths() {
        let mut l = RwLock::new(1);
        {
            let r1 = l.try_read().expect("uncontended try_read");
            let r2 = l.try_read().expect("readers share");
            assert_eq!((*r1, *r2), (1, 1));
            assert!(l.try_write().is_none(), "writer blocked by readers");
        }
        {
            let mut w = l.try_write().expect("uncontended try_write");
            *w = 2;
            assert!(l.try_read().is_none(), "reader blocked by writer");
        }
        assert_eq!(*l.get_mut(), 2);
    }
}
