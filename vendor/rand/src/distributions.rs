//! Distributions beyond the uniform ones built into [`Rng`](crate::Rng).
//!
//! Currently just [`Zipf`], the rank-frequency distribution behind skewed
//! key popularity in storage and serving workloads (YCSB's `zipfian`,
//! CDN object popularity, fingerprint reuse in dedup streams).

use crate::RngCore;

/// Zipf-distributed ranks over `{1, …, n}`: rank `k` is drawn with
/// probability proportional to `k^-s`.
///
/// Sampling is **rejection-free**, via the standard continuous
/// approximation: the bounded-Pareto density `x^-s` on `[1, n + 1)` is
/// inverted in closed form and the drawn real is truncated to a rank.
/// For `s = 0` this degenerates to the exact uniform distribution; for
/// `s > 0` the rank-frequency curve matches Zipf to within the
/// discretization error of the approximation (a few percent on the head
/// ranks), which is what workload generators need — every draw costs one
/// `u64` of randomness and a couple of floating-point operations, with no
/// retry loop whose iteration count depends on the parameters.
///
/// ```
/// use rand::distributions::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let zipf = Zipf::new(1_000, 1.1);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1_000).contains(&rank));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// `(n + 1)^(1 - s)` for `s != 1`, unused for `s == 1`.
    t: f64,
    /// `ln(n + 1)` for the `s == 1` branch.
    ln_n1: f64,
}

impl Zipf {
    /// Tolerance around `s = 1` where the logarithmic CDF branch is used
    /// (the general branch divides by `1 - s`).
    const S_ONE_EPS: f64 = 1e-9;

    /// Creates a Zipf distribution over ranks `1..=n` with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0`, or if `s` is negative or not finite — both are
    /// static misconfigurations of a workload, not runtime conditions.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be finite and >= 0, got {s}");
        let n1 = (n + 1) as f64;
        Zipf { n, s, t: n1.powf(1.0 - s), ln_n1: n1.ln() }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Draws one rank in `1..=n` (rank 1 is the most popular).
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = if (self.s - 1.0).abs() < Self::S_ONE_EPS {
            // CDF(x) = ln(x) / ln(n + 1)  =>  x = (n + 1)^u.
            (u * self.ln_n1).exp()
        } else {
            // CDF(x) = (x^(1-s) - 1) / ((n + 1)^(1-s) - 1)
            //   =>  x = (1 + u * ((n + 1)^(1-s) - 1))^(1 / (1-s)).
            (1.0 + u * (self.t - 1.0)).powf(1.0 / (1.0 - self.s))
        };
        // x lies in [1, n + 1); truncation yields the rank. The clamp only
        // guards floating-point edge rounding.
        (x as u64).clamp(1, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    fn frequencies(n: u64, s: f64, draws: usize) -> Vec<u64> {
        let zipf = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(0x21bf);
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..draws {
            let k = zipf.sample(&mut rng);
            assert!((1..=n).contains(&k));
            counts[k as usize] += 1;
        }
        counts
    }

    #[test]
    fn skewed_draws_follow_the_rank_frequency_law() {
        let counts = frequencies(1_000, 1.0, 200_000);
        // Zipf s=1 over 1000 ranks: p(k) = (1/k)/H_1000, H_1000 ~ 7.485,
        // so p(1) ~ 0.134. The approximation smears the head a little;
        // accept a generous band around the analytic value.
        let p1 = counts[1] as f64 / 200_000.0;
        assert!((0.06..0.25).contains(&p1), "rank-1 mass {p1} out of band");
        // Monotone decay across rank decades (the defining skew shape).
        assert!(counts[1] > 2 * counts[10], "{} vs {}", counts[1], counts[10]);
        assert!(counts[10] > 2 * counts[100].max(1), "{} vs {}", counts[10], counts[100]);
        // The head dominates: top-10 ranks outweigh ranks 500..=1000.
        let head: u64 = counts[1..=10].iter().sum();
        let tail: u64 = counts[500..=1000].iter().sum();
        assert!(head > tail, "head {head} should outweigh deep tail {tail}");
    }

    #[test]
    fn zero_exponent_degenerates_to_uniform() {
        let n = 64u64;
        let draws = 128_000;
        let counts = frequencies(n, 0.0, draws);
        let expect = draws as u64 / n;
        for (k, &c) in counts.iter().enumerate().skip(1) {
            assert!(
                c > expect / 2 && c < expect * 2,
                "rank {k} count {c} far from uniform {expect}"
            );
        }
    }

    #[test]
    fn single_rank_always_draws_one() {
        let zipf = Zipf::new(1, 1.2);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 1);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let zipf = Zipf::new(500, 0.9);
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_are_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
