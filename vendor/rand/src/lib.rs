//! Minimal, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses (the build environment is offline, so the real crate
//! cannot be fetched). It provides [`StdRng`], [`SeedableRng`] and the
//! [`Rng`] extension trait with `gen`, `gen_range`, `gen_bool` and `fill`.
//!
//! The generator is `splitmix64`-seeded `xoshiro256**` — high-quality,
//! deterministic and fast; statistical equivalence with upstream `StdRng`
//! is *not* promised (and nothing here relies on it).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's output.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled to produce a `T` (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly from its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p.clamp(0.0, 1.0)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let x: u64 = a.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = a.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = a.gen();
            assert!((0.0..1.0).contains(&f));
        }
        assert!((0..10_000).filter(|_| a.gen_bool(0.5)).count() > 3000);
    }
}
