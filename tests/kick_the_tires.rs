//! Kick the tires: a minutes-or-less deterministic pass over the
//! crash-injection suite that prints the `RecoveryReport` headline
//! numbers (run with `--nocapture` to see them).
//!
//! One eviction-churn CLAM per crash point: the same 6 000-op workload is
//! cut at increasing fractions of its device schedule — early (before the
//! first flush), mid-stream, inside the log wrap, and after the last
//! write — each time with a torn trailing write, then recovered from the
//! surviving flash image alone. See `tests/crash_recovery.rs` for the
//! adversarial property tests; this file is the demo-scale reproduction
//! described in EXPERIMENTS.md.

use clam::bufferhash::analysis::FlashCostModel;
use clam::bufferhash::{
    hash_with_seed, Clam, ClamConfig, EvictionPolicy, FilterMode, FlashLayoutMode,
};
use clam::flashsim::{CrashDevice, Device, Ssd};

fn churn_config() -> ClamConfig {
    let config = ClamConfig {
        flash_capacity: 32 << 10,
        dram_bytes: 1 << 20,
        buffer_bytes_total: 8 * 1024,
        buffer_bytes_per_table: 4 * 1024,
        entry_size: 16,
        max_buffer_utilization: 0.9,
        eviction: EvictionPolicy::Fifo,
        filter_mode: FilterMode::BitSliced,
        layout: FlashLayoutMode::GlobalLog,
        enable_buffering: true,
    };
    config.validate().expect("valid churn config");
    config
}

#[test]
fn kick_the_tires() {
    const CAP: u64 = 1 << 20;
    let config = churn_config();
    let ops: Vec<(u64, u64)> =
        (0..6_000u64).map(|i| (hash_with_seed(i % 1_200, 0x7137), i)).collect();

    // Twin run: how many data-effect operations the full workload costs,
    // so crash points can be placed as fractions of the real schedule.
    let total = {
        let mut twin =
            Clam::new(CrashDevice::new(Ssd::intel(CAP).unwrap()), config.clone()).unwrap();
        for &(k, v) in &ops {
            twin.insert(k, v).unwrap();
        }
        twin.device().crash_stats().ops_applied
    };
    println!("workload: {} inserts = {} device ops on the Intel SSD profile", ops.len(), total);

    let model = FlashCostModel::from_profile(Ssd::intel(CAP).unwrap().profile());
    let depth = Ssd::intel(CAP).unwrap().profile().queue.max_queue_depth;

    for percent in [10u64, 40, 70, 95, 100] {
        let budget = total * percent / 100;
        let mut crash = CrashDevice::cut_after(Ssd::intel(CAP).unwrap(), budget);
        crash.set_torn_write_bytes(1_500);
        let mut clam = Clam::new(crash, config.clone()).unwrap();
        let mut acked = 0usize;
        for &(k, v) in &ops {
            if clam.insert(k, v).is_err() {
                break;
            }
            acked += 1;
        }
        let stats = clam.device().crash_stats();
        let image = clam.into_device().into_inner();
        let (mut recovered, report) = Clam::recover(image, config.clone()).unwrap();

        // Headline numbers: what the cut destroyed and what the scan got back.
        println!(
            "cut @ {percent:>3}% ({budget:>2} ops, {acked:>4} acked inserts, torn write: {:?})",
            stats.torn_write
        );
        println!("  {report}");

        // Invariants the property suite enforces in anger, spot-checked here.
        assert_eq!(
            report.accepted + report.torn + report.stale + report.empty,
            report.slots_scanned as usize,
            "every slot classified exactly once"
        );
        assert_eq!(
            report.scan_makespan,
            model.recovery_scan_makespan(
                report.slots_scanned as usize,
                (report.bytes_scanned / report.slots_scanned) as usize,
                depth
            ),
            "analytic recovery_scan_makespan must price the scan exactly"
        );
        let keys: std::collections::HashSet<u64> = ops.iter().map(|&(k, _)| k).collect();
        let survivors =
            keys.iter().filter(|&&k| recovered.lookup(k).unwrap().value.is_some()).count();
        println!(
            "  lookup sweep: {survivors} of {} distinct keys durable after recovery",
            keys.len()
        );
        assert!(
            percent < 40 || report.accepted > 0,
            "mid-stream cuts must leave durable incarnations"
        );
    }
}
