//! Property-based tests (proptest) on the core data structures and the
//! CLAM's end-to-end semantics.

use std::collections::HashMap;

use proptest::collection::vec;
use proptest::prelude::*;

use clam::bufferhash::{
    lookup_in_page, parse_incarnation, BloomFilter, Clam, ClamConfig, CuckooBuffer, Entry,
    EvictionPolicy, FilterMode, FlashLayoutMode, IncarnationLayout, LookupOutcome, PageLookup,
};
use clam::flashsim::{
    Device, DeviceError, DramDevice, FileDevice, FlashChip, IoRequest, MagneticDisk, SparseStore,
    Ssd,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sparse store behaves exactly like a flat byte array.
    #[test]
    fn sparse_store_matches_flat_array(
        writes in vec((0u64..60_000, vec(any::<u8>(), 1..400)), 1..30)
    ) {
        let mut store = SparseStore::new(4096);
        let mut model = vec![0u8; 64 * 1024];
        for (offset, data) in &writes {
            store.write(*offset, data);
            model[*offset as usize..*offset as usize + data.len()].copy_from_slice(data);
        }
        let mut buf = vec![0u8; model.len()];
        store.read(0, &mut buf);
        prop_assert_eq!(buf, model);
    }

    /// Bloom filters never produce false negatives.
    #[test]
    fn bloom_has_no_false_negatives(keys in vec(any::<u64>(), 1..500), bits in 512usize..8192) {
        let mut filter = BloomFilter::new(bits, 5);
        for &k in &keys {
            filter.insert(k);
        }
        for &k in &keys {
            prop_assert!(filter.contains(k));
        }
    }

    /// The cuckoo buffer behaves like a map for any interleaving of inserts,
    /// updates and removals (within capacity).
    #[test]
    fn cuckoo_buffer_matches_hashmap(ops in vec((any::<u16>(), any::<u64>(), any::<bool>()), 1..400)) {
        let mut buffer = CuckooBuffer::new(4096, 0.5);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (k, v, remove) in ops {
            let k = k as u64 + 1;
            if remove {
                prop_assert_eq!(buffer.remove(k), model.remove(&k));
            } else if model.len() < buffer.capacity() || model.contains_key(&k) {
                buffer.insert(k, v);
                model.insert(k, v);
            }
        }
        for (k, v) in &model {
            prop_assert_eq!(buffer.get(*k), Some(*v));
        }
        prop_assert_eq!(buffer.len(), model.len());
    }

    /// Every entry serialized into an incarnation is findable again, and the
    /// full parse returns exactly the serialized set.
    #[test]
    fn incarnation_round_trips(raw in vec((any::<u64>(), any::<u64>()), 1..800)) {
        // Deduplicate keys: an incarnation stores one value per key.
        let mut map = HashMap::new();
        for (k, v) in raw {
            map.insert(k, v);
        }
        let entries: Vec<Entry> = map.iter().map(|(k, v)| Entry::new(*k, *v)).collect();
        let layout = IncarnationLayout::new(32 * 1024, 2048).unwrap();
        prop_assume!(entries.len() <= layout.max_entries());
        let image = layout.serialize(&entries).unwrap();
        // Full parse returns the same multiset.
        let mut parsed = parse_incarnation(&image, &layout).unwrap();
        let mut expect = entries.clone();
        parsed.sort_unstable_by_key(|e| (e.key, e.value));
        expect.sort_unstable_by_key(|e| (e.key, e.value));
        prop_assert_eq!(parsed, expect);
        // Point lookups succeed via the page-probe protocol.
        for e in &entries {
            let mut page_idx = layout.page_of_key(e.key);
            let mut found = false;
            for _ in 0..layout.num_pages {
                let page = &image[page_idx * layout.page_size..(page_idx + 1) * layout.page_size];
                match lookup_in_page(page, e.key).unwrap() {
                    PageLookup::Found(v) => { prop_assert_eq!(v, e.value); found = true; break; }
                    PageLookup::Continue => page_idx = (page_idx + 1) % layout.num_pages,
                    PageLookup::Absent => break,
                }
            }
            prop_assert!(found, "entry not found after serialization");
        }
    }
}

/// A deliberately tiny CLAM (two super tables, 32 KiB buffers) so property
/// tests reach buffer flushes with a few thousand ops.
fn tiny_clam() -> Clam<Ssd> {
    let config = ClamConfig {
        flash_capacity: 8 << 20,
        dram_bytes: 1 << 20,
        buffer_bytes_total: 64 * 1024,
        buffer_bytes_per_table: 32 * 1024,
        entry_size: 16,
        max_buffer_utilization: 0.5,
        eviction: EvictionPolicy::Fifo,
        filter_mode: FilterMode::BitSliced,
        layout: FlashLayoutMode::GlobalLog,
        enable_buffering: true,
    };
    config.validate().expect("valid tiny config");
    Clam::new(Ssd::intel(8 << 20).unwrap(), config).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `insert_batch` over any op sequence (duplicate keys included), cut
    /// into arbitrary batch sizes, yields a state observationally
    /// equivalent to the same ops applied via sequential `insert`: the
    /// same lookups return the same values from the same sources, and the
    /// stats counters that describe state evolution (flushes, recorded
    /// ops, hits/misses) match. Only the charged latencies differ — that
    /// amortization is the point of batching.
    #[test]
    fn insert_batch_equivalent_to_sequential_inserts(
        raw in vec((0u64..3_000, any::<u64>()), 200..3_000),
        batch in 1usize..300,
    ) {
        let ops: Vec<(u64, u64)> = raw
            .iter()
            .map(|&(k, v)| (clam::bufferhash::hash_with_seed(k, 0x6a7c4), v))
            .collect();
        let mut seq = tiny_clam();
        let mut bat = tiny_clam();
        for &(k, v) in &ops {
            seq.insert(k, v).unwrap();
        }
        for chunk in ops.chunks(batch) {
            bat.insert_batch(chunk).unwrap();
        }
        prop_assert_eq!(seq.stats().flushes, bat.stats().flushes);
        prop_assert_eq!(seq.stats().forced_evictions, bat.stats().forced_evictions);
        prop_assert_eq!(seq.stats().reinsertions, bat.stats().reinsertions);
        prop_assert_eq!(seq.stats().inserts.len(), bat.stats().inserts.len());
        prop_assert_eq!(seq.approximate_entries(), bat.approximate_entries());
        // Batched lookups over every written key agree with sequential
        // lookups on the sequentially-built CLAM.
        let keys: Vec<u64> = ops.iter().map(|&(k, _)| k).collect();
        let batched = bat.lookup_batch(&keys).unwrap();
        for (i, &k) in keys.iter().enumerate() {
            let solo = seq.lookup(k).unwrap();
            prop_assert_eq!(batched[i].value, solo.value);
            prop_assert_eq!(batched[i].source, solo.source);
            prop_assert_eq!(batched[i].flash_reads, solo.flash_reads);
        }
        prop_assert_eq!(seq.stats().lookup_hits, bat.stats().lookup_hits);
        prop_assert_eq!(seq.stats().lookup_misses, bat.stats().lookup_misses);
    }
}

/// A tiny CLAM over an arbitrary backend for the queued-lookup equivalence
/// property. `max_utilization` tunes the incarnation page fill: at 0.9 the
/// pages run close to capacity, so overflow chains (multi-hop probe
/// sequences) occur routinely.
fn tiny_clam_on<D: Device>(device: D, max_utilization: f64) -> Clam<D> {
    let config = ClamConfig {
        flash_capacity: 8 << 20,
        dram_bytes: 1 << 20,
        buffer_bytes_total: 64 * 1024,
        buffer_bytes_per_table: 32 * 1024,
        entry_size: 16,
        max_buffer_utilization: max_utilization,
        eviction: EvictionPolicy::Fifo,
        filter_mode: FilterMode::BitSliced,
        layout: FlashLayoutMode::GlobalLog,
        enable_buffering: true,
    };
    config.validate().expect("valid tiny config");
    Clam::new(device, config).unwrap()
}

/// Loads `ops` and `deletes` into a CLAM on `device`, then checks that the
/// queued `lookup_batch` pipeline returns outcomes identical to sequential
/// per-op `lookup` calls over the same keys: values, sources, per-key flash
/// read counts, and the hit/miss/read statistics deltas all match. Lookups
/// under FIFO eviction mutate nothing, so both phases observe the same
/// state and must agree exactly — including delete-shadowed keys and keys
/// whose home page overflowed into a probe chain.
fn check_queued_lookup_equivalence<D: Device>(
    device: D,
    max_utilization: f64,
    ops: &[(u64, u64)],
    deletes: &[u64],
    queries: &[u64],
    batch: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut clam = tiny_clam_on(device, max_utilization);
    for chunk in ops.chunks(257) {
        clam.insert_batch(chunk).unwrap();
    }
    for &k in deletes {
        clam.delete(k).unwrap();
    }
    let name = clam.device().name();
    let start = clam.stats().clone();
    let mut batched: Vec<LookupOutcome> = Vec::new();
    for chunk in queries.chunks(batch) {
        let out = clam.lookup_batch(chunk).unwrap();
        prop_assert_eq!(out.ops(), chunk.len());
        batched.extend(out);
    }
    let mid = clam.stats().clone();
    for (i, &k) in queries.iter().enumerate() {
        let solo = clam.lookup(k).unwrap();
        prop_assert!(batched[i].value == solo.value, "value mismatch on {name} index {i}");
        prop_assert!(batched[i].source == solo.source, "source mismatch on {name} index {i}");
        prop_assert!(
            batched[i].flash_reads == solo.flash_reads,
            "flash-read mismatch on {name} index {i}"
        );
    }
    let end = clam.stats().clone();
    // The two phases saw identical state, so their stat deltas agree.
    prop_assert_eq!(mid.lookup_hits - start.lookup_hits, end.lookup_hits - mid.lookup_hits);
    prop_assert_eq!(mid.lookup_misses - start.lookup_misses, end.lookup_misses - mid.lookup_misses);
    prop_assert_eq!(
        mid.lookup_flash_reads - start.lookup_flash_reads,
        end.lookup_flash_reads - mid.lookup_flash_reads
    );
    prop_assert_eq!(
        mid.spurious_flash_reads - start.spurious_flash_reads,
        end.spurious_flash_reads - mid.spurious_flash_reads
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The queued `lookup_batch` probe pipeline is observationally
    /// equivalent to sequential per-op `lookup` calls — values, sources,
    /// per-key flash read counts and hit/miss stats — on all five device
    /// backends, over op streams that include flash-resident keys,
    /// delete-shadowed keys, absent keys and overflow probe chains, cut
    /// into arbitrary batch sizes. Only the charged latency may differ:
    /// batched probes overlap on the device queue.
    #[test]
    fn queued_lookup_batch_equivalent_to_sequential_lookups(
        raw_ops in vec((0u64..2_000, any::<u64>()), 300..1_200),
        raw_deletes in vec(0u64..2_000, 0..80),
        raw_queries in vec(0u64..4_000, 60..300),
        batch in 1usize..96,
    ) {
        let fp = |k: u64| clam::bufferhash::hash_with_seed(k, 0x6a7c4);
        let ops: Vec<(u64, u64)> = raw_ops.iter().map(|&(k, v)| (fp(k), v)).collect();
        let deletes: Vec<u64> = raw_deletes.iter().map(|&k| fp(k)).collect();
        let queries: Vec<u64> = raw_queries.iter().map(|&k| fp(k)).collect();

        const CAP: u64 = 8 << 20;
        // High page fill on the page-addressed media provokes overflow
        // chains; DRAM's 64-byte pages overflow plentifully even at the
        // default fill (and cannot hold a 0.9-full buffer image).
        check_queued_lookup_equivalence(
            Ssd::intel(CAP).unwrap(), 0.9, &ops, &deletes, &queries, batch)?;
        check_queued_lookup_equivalence(
            FlashChip::new(CAP).unwrap(), 0.9, &ops, &deletes, &queries, batch)?;
        check_queued_lookup_equivalence(
            MagneticDisk::new(CAP).unwrap(), 0.9, &ops, &deletes, &queries, batch)?;
        check_queued_lookup_equivalence(
            DramDevice::new(CAP).unwrap(), 0.5, &ops, &deletes, &queries, batch)?;
        let path = std::env::temp_dir()
            .join(format!("clam-queued-lookup-prop-{}", std::process::id()));
        let outcome = check_queued_lookup_equivalence(
            FileDevice::create(&path, CAP).unwrap(), 0.9, &ops, &deletes, &queries, batch);
        std::fs::remove_file(&path).ok();
        outcome?;
    }
}

/// Loads `ops` and `deletes` into a CLAM on `device`, then checks that the
/// streaming **ring** pipeline (`lookup_batch`) produces per-key outcomes —
/// values, sources, flash-read counts — and hit/miss/read statistics
/// identical to the barrier **wave** pipeline (`lookup_batch_waves`) over
/// the same queries. Lookups under FIFO eviction mutate nothing, so both
/// pipelines observe the same state and must agree exactly; only the
/// charged latency may differ (the ring replaces the sum of per-wave
/// maxima with a single continuous queue schedule).
fn check_ring_equivalent_to_waves<D: Device>(
    device: D,
    max_utilization: f64,
    ops: &[(u64, u64)],
    deletes: &[u64],
    queries: &[u64],
    batch: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut clam = tiny_clam_on(device, max_utilization);
    for chunk in ops.chunks(257) {
        clam.insert_batch(chunk).unwrap();
    }
    for &k in deletes {
        clam.delete(k).unwrap();
    }
    let name = clam.device().name();
    let start = clam.stats().clone();
    let mut ring: Vec<LookupOutcome> = Vec::new();
    let mut ring_rounds = 0usize;
    for chunk in queries.chunks(batch) {
        let out = clam.lookup_batch(chunk).unwrap();
        prop_assert_eq!(out.ops(), chunk.len());
        prop_assert!(
            out.probe_reads == 0 || out.reaps == out.probe_reads,
            "every ring probe must be reaped on {}",
            name
        );
        ring_rounds += out.waves;
        ring.extend(out);
    }
    let mid = clam.stats().clone();
    let mut waves: Vec<LookupOutcome> = Vec::new();
    let mut wave_rounds = 0usize;
    for chunk in queries.chunks(batch) {
        let out = clam.lookup_batch_waves(chunk).unwrap();
        prop_assert_eq!(out.ops(), chunk.len());
        prop_assert!(out.reaps == 0, "the barrier pipeline never reaps");
        wave_rounds += out.waves;
        waves.extend(out);
    }
    let end = clam.stats().clone();
    prop_assert!(ring_rounds == wave_rounds, "round depth mismatch on {}", name);
    for (i, (r, w)) in ring.iter().zip(&waves).enumerate() {
        prop_assert!(r.value == w.value, "value mismatch on {name} index {i}");
        prop_assert!(r.source == w.source, "source mismatch on {name} index {i}");
        prop_assert!(r.flash_reads == w.flash_reads, "flash-read mismatch on {name} index {i}");
    }
    // The two phases saw identical state, so their stat deltas agree.
    prop_assert_eq!(mid.lookup_hits - start.lookup_hits, end.lookup_hits - mid.lookup_hits);
    prop_assert_eq!(mid.lookup_misses - start.lookup_misses, end.lookup_misses - mid.lookup_misses);
    prop_assert_eq!(
        mid.lookup_flash_reads - start.lookup_flash_reads,
        end.lookup_flash_reads - mid.lookup_flash_reads
    );
    prop_assert_eq!(
        mid.spurious_flash_reads - start.spurious_flash_reads,
        end.spurious_flash_reads - mid.spurious_flash_reads
    );
    prop_assert_eq!(
        mid.lookup_probe_requests - start.lookup_probe_requests,
        end.lookup_probe_requests - mid.lookup_probe_requests
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The streaming ring pipeline (`lookup_batch`) is observationally
    /// equivalent to the PR-4 barrier wave pipeline
    /// (`lookup_batch_waves`) — identical per-key outcomes, flash-read
    /// counts and hit/miss statistics — on all five device backends, over
    /// op streams that include flash-resident keys, delete-shadowed keys,
    /// absent keys and overflow probe chains, cut into arbitrary batch
    /// sizes. Only the charged latency may differ: the ring streams rounds
    /// through the completion ring instead of draining a wave per round.
    #[test]
    fn streaming_ring_lookups_equivalent_to_wave_pipeline(
        raw_ops in vec((0u64..2_000, any::<u64>()), 300..1_200),
        raw_deletes in vec(0u64..2_000, 0..80),
        raw_queries in vec(0u64..4_000, 60..300),
        batch in 1usize..96,
    ) {
        let fp = |k: u64| clam::bufferhash::hash_with_seed(k, 0x6a7c4);
        let ops: Vec<(u64, u64)> = raw_ops.iter().map(|&(k, v)| (fp(k), v)).collect();
        let deletes: Vec<u64> = raw_deletes.iter().map(|&k| fp(k)).collect();
        let queries: Vec<u64> = raw_queries.iter().map(|&k| fp(k)).collect();

        const CAP: u64 = 8 << 20;
        check_ring_equivalent_to_waves(
            Ssd::intel(CAP).unwrap(), 0.9, &ops, &deletes, &queries, batch)?;
        check_ring_equivalent_to_waves(
            FlashChip::new(CAP).unwrap(), 0.9, &ops, &deletes, &queries, batch)?;
        check_ring_equivalent_to_waves(
            MagneticDisk::new(CAP).unwrap(), 0.9, &ops, &deletes, &queries, batch)?;
        check_ring_equivalent_to_waves(
            DramDevice::new(CAP).unwrap(), 0.5, &ops, &deletes, &queries, batch)?;
        let path = std::env::temp_dir()
            .join(format!("clam-ring-wave-prop-{}", std::process::id()));
        let outcome = check_ring_equivalent_to_waves(
            FileDevice::create(&path, CAP).unwrap(), 0.9, &ops, &deletes, &queries, batch);
        std::fs::remove_file(&path).ok();
        outcome?;
    }
}

/// A CLAM sized for *eviction churn*: 4 KiB buffers over a 32 KiB global
/// log give 4 incarnations per super table and an 8-slot log, so a couple
/// of thousand ops drive ordinary evictions, log wrap and forced
/// (displacement) evictions — the paths where the ring-driven and barrier
/// write paths could plausibly diverge.
///
/// `scale` multiplies every byte dimension (slot, buffer, log, entry)
/// uniformly, so the churn dynamics — entries per buffer, flush cadence,
/// wrap cadence — are identical at any scale. The raw `FlashChip` backend
/// needs `scale = 32`: its 128 KiB erase block must not straddle log
/// slots, or wrap-time erases would destroy live neighbouring
/// incarnations (so 4 KiB slots cannot wrap on raw flash at all).
fn tiny_churn_clam_on<D: Device>(
    device: D,
    eviction: EvictionPolicy,
    util: f64,
    scale: u64,
) -> Clam<D> {
    let config = ClamConfig {
        flash_capacity: (32 << 10) * scale,
        dram_bytes: 1 << 20,
        buffer_bytes_total: 8 * 1024 * scale,
        buffer_bytes_per_table: 4 * 1024 * scale,
        entry_size: (16 * scale) as usize,
        max_buffer_utilization: util,
        eviction,
        filter_mode: FilterMode::BitSliced,
        layout: FlashLayoutMode::GlobalLog,
        enable_buffering: true,
    };
    config.validate().expect("valid churn config");
    Clam::new(device, config).unwrap()
}

/// Runs the same churn workload (batched inserts with eviction cascades,
/// deletes, batched lookups whose LRU re-insertions flush, a final
/// `flush_all`) on two CLAMs — one on the default **ring-driven** write
/// path, one on the blocking **barrier** reference — and checks they are
/// observationally equivalent: identical per-key lookup outcomes (values,
/// sources, flash-read counts), identical flush/eviction/re-insertion and
/// hit/miss statistics, and identical flash traffic (write, trim, erase
/// and read command counts and bytes). Only the charged latency may
/// differ — overlapping the writes is the point of the ring.
#[allow(clippy::too_many_arguments)]
fn check_ring_writes_equivalent_to_barrier<D: Device>(
    ring_device: D,
    barrier_device: D,
    eviction: EvictionPolicy,
    util: f64,
    ops: &[(u64, u64)],
    deletes: &[u64],
    queries: &[u64],
    batch: usize,
    scale: u64,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut ring = tiny_churn_clam_on(ring_device, eviction, util, scale);
    let mut barrier = tiny_churn_clam_on(barrier_device, eviction, util, scale);
    barrier.set_barrier_writes(true);
    let name = ring.device().name();

    for chunk in ops.chunks(batch) {
        ring.insert_batch(chunk).unwrap();
        barrier.insert_batch(chunk).unwrap();
    }
    for &k in deletes {
        ring.delete(k).unwrap();
        barrier.delete(k).unwrap();
    }
    // Batched lookups: under LRU every flash hit re-inserts, and the
    // re-insertion flushes ride each arm's write path (the read pipeline
    // itself is identical on both arms).
    let mut ring_out: Vec<LookupOutcome> = Vec::new();
    let mut barrier_out: Vec<LookupOutcome> = Vec::new();
    for chunk in queries.chunks(batch) {
        ring_out.extend(ring.lookup_batch(chunk).unwrap());
        barrier_out.extend(barrier.lookup_batch(chunk).unwrap());
    }
    ring.flush_all().unwrap();
    barrier.flush_all().unwrap();
    for (i, (r, b)) in ring_out.iter().zip(&barrier_out).enumerate() {
        prop_assert!(r.value == b.value, "query value mismatch on {name} index {i}");
        prop_assert!(r.source == b.source, "query source mismatch on {name} index {i}");
        prop_assert!(r.flash_reads == b.flash_reads, "query read mismatch on {name} index {i}");
    }
    // Final stored state: every op key resolves identically (buffer and
    // incarnation contents agree, including partial-discard survivors and
    // delete shadows).
    for (i, &(k, _)) in ops.iter().enumerate() {
        let rv = ring.lookup(k).unwrap();
        let bv = barrier.lookup(k).unwrap();
        prop_assert!(rv.value == bv.value, "final value mismatch on {name} op index {i}");
        prop_assert!(rv.source == bv.source, "final source mismatch on {name} op index {i}");
        prop_assert!(
            rv.flash_reads == bv.flash_reads,
            "final read-count mismatch on {name} op index {i}"
        );
    }
    let rs = ring.stats().clone();
    let bs = barrier.stats().clone();
    prop_assert_eq!(rs.flushes, bs.flushes);
    prop_assert_eq!(rs.forced_evictions, bs.forced_evictions);
    prop_assert_eq!(rs.reinsertions, bs.reinsertions);
    prop_assert_eq!(rs.lookup_hits, bs.lookup_hits);
    prop_assert_eq!(rs.lookup_misses, bs.lookup_misses);
    prop_assert_eq!(rs.lookup_flash_reads, bs.lookup_flash_reads);
    prop_assert_eq!(rs.coalesced_flush_writes, bs.coalesced_flush_writes);
    // The ledgers prove which path ran: only the ring arm reaps writes.
    prop_assert!(bs.flush_ring_reaps == 0, "barrier arm must not touch the write ring on {}", name);
    prop_assert!(
        rs.flushes == 0 || rs.flush_ring_reaps > 0,
        "ring arm flushed without reaping on {}",
        name
    );
    // Flash traffic agrees command-for-command and byte-for-byte.
    let ri = ring.device().stats();
    let bi = barrier.device().stats();
    prop_assert!(ri.writes == bi.writes, "write count mismatch on {}", name);
    prop_assert!(ri.bytes_written == bi.bytes_written, "written bytes mismatch on {}", name);
    prop_assert!(ri.trims == bi.trims, "trim count mismatch on {}", name);
    prop_assert!(ri.erases == bi.erases, "erase count mismatch on {}", name);
    prop_assert!(ri.reads == bi.reads, "read count mismatch on {}", name);
    prop_assert!(ri.bytes_read == bi.bytes_read, "read bytes mismatch on {}", name);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The ring-driven write path (flushes, partial-discard and
    /// full-discard evictions, LRU re-insertion batches, `flush_all`) is
    /// observationally equivalent to the blocking barrier reference on all
    /// five device backends, under both a partial-discard policy
    /// (update-based §7.4) and LRU (re-inserts on use), over op streams
    /// with eviction churn, log wrap, deletes and arbitrary batch sizes.
    #[test]
    fn ring_driven_writes_equivalent_to_barrier_path(
        raw_ops in vec((0u64..1_500, any::<u64>()), 600..2_400),
        raw_deletes in vec(0u64..1_500, 0..60),
        raw_queries in vec(0u64..3_000, 60..240),
        batch in 1usize..96,
    ) {
        let fp = |k: u64| clam::bufferhash::hash_with_seed(k, 0x6a7c4);
        let ops: Vec<(u64, u64)> = raw_ops.iter().map(|&(k, v)| (fp(k), v)).collect();
        let deletes: Vec<u64> = raw_deletes.iter().map(|&k| fp(k)).collect();
        let queries: Vec<u64> = raw_queries.iter().map(|&k| fp(k)).collect();

        const CAP: u64 = 1 << 20;
        for eviction in [EvictionPolicy::UpdateBased, EvictionPolicy::Lru] {
            check_ring_writes_equivalent_to_barrier(
                Ssd::intel(CAP).unwrap(), Ssd::intel(CAP).unwrap(),
                eviction, 0.9, &ops, &deletes, &queries, batch, 1)?;
            // Raw flash: scale the geometry so each 128 KiB log slot is
            // exactly one erase block (smaller slots cannot wrap legally
            // on a raw chip — erasing one would wipe its neighbours).
            check_ring_writes_equivalent_to_barrier(
                FlashChip::new(CAP).unwrap(), FlashChip::new(CAP).unwrap(),
                eviction, 0.9, &ops, &deletes, &queries, batch, 32)?;
            check_ring_writes_equivalent_to_barrier(
                MagneticDisk::new(CAP).unwrap(), MagneticDisk::new(CAP).unwrap(),
                eviction, 0.9, &ops, &deletes, &queries, batch, 1)?;
            check_ring_writes_equivalent_to_barrier(
                DramDevice::new(CAP).unwrap(), DramDevice::new(CAP).unwrap(),
                eviction, 0.5, &ops, &deletes, &queries, batch, 1)?;
            let dir = std::env::temp_dir();
            let tag = format!("{:?}-{}", eviction, std::process::id());
            let ring_path = dir.join(format!("clam-ring-write-prop-{tag}"));
            let barrier_path = dir.join(format!("clam-barrier-write-prop-{tag}"));
            let outcome = check_ring_writes_equivalent_to_barrier(
                FileDevice::create(&ring_path, CAP).unwrap(),
                FileDevice::create(&barrier_path, CAP).unwrap(),
                eviction, 0.9, &ops, &deletes, &queries, batch, 1);
            std::fs::remove_file(&ring_path).ok();
            std::fs::remove_file(&barrier_path).ok();
            outcome?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end: a CLAM driven by an arbitrary operation sequence agrees
    /// with a HashMap, as long as capacity is not exceeded (no eviction).
    #[test]
    fn clam_matches_hashmap_semantics(ops in vec((0u64..3_000, any::<u64>(), 0u8..10), 200..1_200)) {
        let config = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
        let mut clam = Clam::new(Ssd::intel(8 << 20).unwrap(), config).unwrap();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (k, v, action) in ops {
            // Keys derive from a fixed seed so inserts, deletes and lookups
            // of the same logical key collide across actions.
            let key = clam::bufferhash::hash_with_seed(k, 0x9a7e);
            match action {
                0..=5 => {
                    clam.insert(key, v).unwrap();
                    model.insert(key, v);
                }
                6..=7 => {
                    clam.delete(key).unwrap();
                    model.remove(&key);
                }
                _ => {
                    prop_assert_eq!(clam.lookup(key).unwrap().value, model.get(&key).copied());
                }
            }
        }
        for (k, v) in model {
            prop_assert_eq!(clam.lookup(k).unwrap().value, Some(v));
        }
    }
}

/// Builds the same request mix twice (submissions consume nothing, but the
/// two devices need independent instances).
fn build_requests(raw: &[(u8, u64, usize, u8)], capacity: u64) -> Vec<IoRequest> {
    raw.iter()
        .map(|&(kind, offset, len, fill)| match kind % 4 {
            0 => IoRequest::Read { offset, len },
            1 => IoRequest::Write { offset, data: vec![fill; len] },
            2 => IoRequest::Trim { offset, len: len as u64 },
            _ => IoRequest::Erase { block: offset % (capacity / (128 * 1024) + 4) },
        })
        .collect()
}

/// Issues `requests` one at a time through the per-op `Device` methods,
/// returning the normalized per-request outcome (read data / empty, or the
/// error).
fn issue_sequentially<D: Device>(
    device: &mut D,
    requests: &[IoRequest],
) -> Vec<Result<Vec<u8>, DeviceError>> {
    requests
        .iter()
        .map(|request| match request {
            IoRequest::Read { offset, len } => {
                let mut buf = vec![0u8; *len];
                device.read_at(*offset, &mut buf).map(|_| buf)
            }
            IoRequest::Write { offset, data } => device.write_at(*offset, data).map(|_| Vec::new()),
            IoRequest::Erase { block } => device.erase_block(*block).map(|_| Vec::new()),
            IoRequest::Trim { offset, len } => device.trim(*offset, *len).map(|_| Vec::new()),
        })
        .collect()
}

/// Asserts that submitting `raw` as one batch leaves `batched` in the same
/// observable state (per-request results + final bytes) as issuing the same
/// ops sequentially on `sequential`.
fn assert_submit_equivalent<D: Device>(
    mut sequential: D,
    mut batched: D,
    raw: &[(u8, u64, usize, u8)],
) -> Result<(), proptest::TestCaseError> {
    let capacity = sequential.geometry().capacity;
    let expected = issue_sequentially(&mut sequential, &build_requests(raw, capacity));
    let mut requests = build_requests(raw, capacity);
    let completions = batched.submit(&mut requests).unwrap();
    prop_assert_eq!(completions.len(), expected.len());
    for (completion, expect) in completions.iter().zip(&expected) {
        match (&completion.result, expect) {
            (Ok(got), Ok(want)) => {
                prop_assert!(got == want, "data mismatch on {}", batched.name())
            }
            (Err(got), Err(want)) => {
                prop_assert!(got == want, "error mismatch on {}", batched.name())
            }
            (got, want) => prop_assert!(
                false,
                "result class mismatch on {}: batched {:?} vs sequential {:?}",
                batched.name(),
                got,
                want
            ),
        }
    }
    // Final device bytes agree.
    let mut seq_bytes = vec![0u8; capacity as usize];
    let mut bat_bytes = vec![0u8; capacity as usize];
    sequential.read_at(0, &mut seq_bytes).unwrap();
    batched.read_at(0, &mut bat_bytes).unwrap();
    prop_assert!(seq_bytes == bat_bytes, "final bytes mismatch on {}", batched.name());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Device::submit` over an arbitrary request mix (reads, writes,
    /// trims, erases; overlapping ranges; out-of-bounds and unsupported
    /// commands included) is observationally equivalent — per-request
    /// results and final device bytes — to issuing the same operations
    /// sequentially, on all five backends. Devices may only overlap or
    /// reorder *timing*, never data effects.
    #[test]
    fn submit_equivalent_to_sequential_ops(
        raw in vec((any::<u8>(), 0u64..(1 << 20) + 16_384, 0usize..6_000, any::<u8>()), 1..24)
    ) {
        const CAP: u64 = 1 << 20;
        assert_submit_equivalent(
            DramDevice::new(CAP).unwrap(),
            DramDevice::new(CAP).unwrap(),
            &raw,
        )?;
        assert_submit_equivalent(
            FlashChip::new(CAP).unwrap(),
            FlashChip::new(CAP).unwrap(),
            &raw,
        )?;
        assert_submit_equivalent(Ssd::intel(CAP).unwrap(), Ssd::intel(CAP).unwrap(), &raw)?;
        assert_submit_equivalent(
            MagneticDisk::new(CAP).unwrap(),
            MagneticDisk::new(CAP).unwrap(),
            &raw,
        )?;
        let dir = std::env::temp_dir();
        let seq_path = dir.join(format!("clam-prop-seq-{}", std::process::id()));
        let bat_path = dir.join(format!("clam-prop-bat-{}", std::process::id()));
        let outcome = assert_submit_equivalent(
            FileDevice::create(&seq_path, CAP).unwrap(),
            FileDevice::create(&bat_path, CAP).unwrap(),
            &raw,
        );
        std::fs::remove_file(&seq_path).ok();
        std::fs::remove_file(&bat_path).ok();
        outcome?;
    }
}
