//! Integration tests pitting the CLAM against the baseline indexes on the
//! same simulated devices — the qualitative claims of §7.2 as assertions.

use clam::baseline::{BdbBtreeIndex, BdbConfig, BdbHashIndex, ConventionalFlashHash};
use clam::bufferhash::{hash_with_seed, Clam, ClamConfig};
use clam::flashsim::{Device, MagneticDisk, SimDuration, Ssd};

fn key(i: u64) -> u64 {
    hash_with_seed(i, 0xc0de) | 1
}

#[test]
fn clam_inserts_are_orders_of_magnitude_cheaper_than_bdb_on_the_same_ssd() {
    let cfg = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
    let mut clam = Clam::new(Ssd::intel(8 << 20).unwrap(), cfg).unwrap();
    let mut bdb = BdbHashIndex::new(
        Ssd::intel(8 << 20).unwrap(),
        BdbConfig { cache_bytes: 256 * 1024, ..Default::default() },
    )
    .unwrap();

    let mut clam_total = SimDuration::ZERO;
    let mut bdb_total = SimDuration::ZERO;
    for i in 0..20_000u64 {
        clam_total += clam.insert(key(i), i).unwrap().latency;
        bdb_total += bdb.insert(key(i), i).unwrap();
    }
    assert!(
        clam_total * 20 < bdb_total,
        "CLAM {clam_total} should be >20x cheaper than BDB {bdb_total} for inserts"
    );
}

#[test]
fn clam_beats_the_conventional_on_flash_hash_table() {
    let cfg = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
    let mut clam = Clam::new(Ssd::intel(8 << 20).unwrap(), cfg).unwrap();
    let mut conventional = ConventionalFlashHash::new(Ssd::intel(8 << 20).unwrap()).unwrap();
    let mut clam_total = SimDuration::ZERO;
    let mut conv_total = SimDuration::ZERO;
    for i in 0..5_000u64 {
        clam_total += clam.insert(key(i), i).unwrap().latency;
        conv_total += conventional.insert(key(i), i).unwrap();
    }
    assert!(
        clam_total * 10 < conv_total,
        "buffered inserts ({clam_total}) must beat per-insert page writes ({conv_total})"
    );
}

#[test]
fn bdb_hash_and_btree_agree_on_contents_but_both_pay_device_io() {
    // Small page caches so both indexes must actually touch the device.
    let mut hash = BdbHashIndex::new(
        Ssd::intel(8 << 20).unwrap(),
        BdbConfig { cache_bytes: 64 * 1024, ..Default::default() },
    )
    .unwrap();
    let mut btree = BdbBtreeIndex::new(Ssd::intel(8 << 20).unwrap(), 64 * 1024).unwrap();
    for i in 0..20_000u64 {
        hash.insert(key(i), i).unwrap();
        btree.insert(key(i), i).unwrap();
    }
    for i in (0..20_000u64).step_by(487) {
        assert_eq!(hash.lookup(key(i)).unwrap().0, Some(i));
        assert_eq!(btree.lookup(key(i)).unwrap().0, Some(i));
    }
    assert!(hash.device().stats().total_ops() > 1_000);
    assert!(btree.device().stats().total_ops() > 1_000);
}

#[test]
fn bdb_on_disk_is_seek_bound_and_slower_than_bdb_on_ssd() {
    let mut on_disk = BdbHashIndex::new(
        MagneticDisk::new(8 << 20).unwrap(),
        BdbConfig { cache_bytes: 128 * 1024, ..Default::default() },
    )
    .unwrap();
    let mut on_ssd = BdbHashIndex::new(
        Ssd::intel(8 << 20).unwrap(),
        BdbConfig { cache_bytes: 128 * 1024, ..Default::default() },
    )
    .unwrap();
    for i in 0..8_000u64 {
        on_disk.insert(key(i), i).unwrap();
        on_ssd.insert(key(i), i).unwrap();
    }
    let disk_mean = on_disk.insert_latency.mean();
    let ssd_mean = on_ssd.insert_latency.mean();
    assert!(disk_mean > SimDuration::from_millis(1), "disk inserts should cost ms: {disk_mean}");
    assert!(disk_mean > ssd_mean, "disk ({disk_mean}) should be slower than SSD ({ssd_mean})");
}

#[test]
fn clam_lookup_latency_stays_sub_millisecond_at_forty_percent_hit_rate() {
    let cfg = ClamConfig::small_test(16 << 20, 4 << 20).unwrap();
    let mut clam = Clam::new(Ssd::intel(16 << 20).unwrap(), cfg).unwrap();
    for i in 0..200_000u64 {
        clam.insert(key(i), i).unwrap();
    }
    clam.reset_stats();
    for i in 0..20_000u64 {
        let k = if i % 5 < 2 { key(i * 9 % 200_000) } else { hash_with_seed(i, 0xff) };
        clam.lookup(k).unwrap();
    }
    let mean = clam.stats().lookups.mean();
    assert!(
        mean < SimDuration::from_micros(300),
        "mean lookup at ~40% LSR should stay well below 1 ms, got {mean}"
    );
    let max = clam.stats().lookups.max();
    assert!(max < SimDuration::from_millis(5), "worst-case lookup {max} too high");
}
