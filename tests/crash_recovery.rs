//! Crash-injection property tests: power cuts at arbitrary points in the
//! op stream, torn trailing writes, and recovery from the surviving flash
//! image alone.
//!
//! The oracle is a *trusted scan*: an independent test-side read of the
//! post-crash image that classifies every log slot with
//! [`scan_incarnation`] and applies the recovery acceptance rules
//! ((epoch, seq) shadowing, youngest-`k` retention) in plain code. A key
//! is **durable** exactly when it appears in an accepted incarnation; the
//! expected value is the one in the youngest accepted incarnation holding
//! the key. [`Clam::recover`] must find every durable key with exactly
//! that value, report slot counts identical to the trusted scan, and
//! never fabricate a value the workload did not insert.

use std::collections::{HashMap, HashSet};

use proptest::collection::vec;
use proptest::prelude::*;

use clam::bufferhash::{
    hash_with_seed, scan_incarnation, Clam, ClamConfig, Entry, EvictionPolicy, FilterMode,
    FlashLayoutMode, IncarnationIdentity, IncarnationLayout, SlotScan,
};
use clam::flashsim::{CrashDevice, Device, DramDevice, FileDevice, FlashChip, MagneticDisk, Ssd};

/// One workload operation: `(key, value, delete?)`.
type Op = (u64, u64, bool);

/// The churn configuration from `property_tests.rs`: 4 KiB × `scale`
/// buffers over a 32 KiB × `scale` log give 2 super tables, 8 log slots
/// and 4 incarnations per table, so a couple of thousand ops drive
/// flushes, evictions and log wrap. `entry_size` scales with the byte
/// dimensions so the flush cadence is identical at any scale.
fn crash_config(layout: FlashLayoutMode, util: f64, scale: u64) -> ClamConfig {
    let config = ClamConfig {
        flash_capacity: (32 << 10) * scale,
        dram_bytes: 1 << 20,
        buffer_bytes_total: 8 * 1024 * scale,
        buffer_bytes_per_table: 4 * 1024 * scale,
        entry_size: (16 * scale) as usize,
        max_buffer_utilization: util,
        eviction: EvictionPolicy::Fifo,
        filter_mode: FilterMode::BitSliced,
        layout,
        enable_buffering: true,
    };
    config.validate().expect("valid crash config");
    config
}

/// Applies `ops` one at a time until the first error (the power cut
/// surfacing through a flush) and returns how many were acknowledged.
fn drive<D: Device>(clam: &mut Clam<D>, ops: &[Op]) -> usize {
    for (i, &(k, v, del)) in ops.iter().enumerate() {
        let outcome = if del { clam.delete(k).map(|_| ()) } else { clam.insert(k, v).map(|_| ()) };
        if outcome.is_err() {
            return i;
        }
    }
    ops.len()
}

/// What an independent scan of the post-crash image says survived.
struct TrustedScan {
    /// Accepted incarnations, youngest-first within each table (and the
    /// tables concatenated), after (epoch, seq) shadowing and youngest-`k`
    /// retention.
    accepted: Vec<(IncarnationIdentity, Vec<Entry>)>,
    torn: usize,
    stale: usize,
    empty: usize,
}

/// Classifies every log slot of `device` exactly as recovery must:
/// checksum-valid slots survive, shadowed or beyond-`k` ones are stale,
/// everything else is torn or empty.
fn trusted_scan<D: Device>(device: &mut D, config: &ClamConfig) -> TrustedScan {
    let page_size = device.geometry().page_size as usize;
    let layout = IncarnationLayout::new(config.buffer_bytes_per_table as usize, page_size)
        .expect("layout for trusted scan");
    let slot_size = config.buffer_bytes_per_table;
    let num_slots = config.total_flash_slots();
    let num_tables = config.num_super_tables();
    let k = config.incarnations_per_table();

    let mut valid: Vec<(IncarnationIdentity, Vec<Entry>)> = Vec::new();
    let (mut torn, mut empty) = (0usize, 0usize);
    for slot in 0..num_slots {
        let mut bytes = vec![0u8; slot_size as usize];
        device.read_at(slot * slot_size, &mut bytes).expect("trusted scan read");
        match scan_incarnation(&bytes, &layout) {
            SlotScan::Empty => empty += 1,
            SlotScan::Torn { .. } => torn += 1,
            SlotScan::Valid { identity, entries } => {
                if (identity.table as usize) < num_tables {
                    valid.push((identity, entries));
                } else {
                    torn += 1;
                }
            }
        }
    }

    // Youngest first by (epoch, seq); duplicates of a (table, seq) and
    // anything beyond the youngest `k` of its table are stale.
    valid.sort_by_key(|v| std::cmp::Reverse((v.0.epoch, v.0.seq)));
    let mut stale = 0usize;
    let mut accepted: Vec<(IncarnationIdentity, Vec<Entry>)> = Vec::new();
    let mut per_table = vec![0usize; num_tables];
    let mut seen: HashSet<(u16, u64)> = HashSet::new();
    for (identity, entries) in valid {
        let t = identity.table as usize;
        if !seen.insert((identity.table, identity.seq)) || per_table[t] >= k {
            stale += 1;
            continue;
        }
        per_table[t] += 1;
        accepted.push((identity, entries));
    }
    TrustedScan { accepted, torn, stale, empty }
}

/// Runs `ops` against a CLAM on `victim` armed to lose power after
/// `budget` data-effect operations (with a `torn_bytes` torn prefix on
/// the fatal write), recovers from the surviving image, and checks the
/// recovered state against the trusted scan of that image.
fn check_crash_then_recover<D: Device>(
    victim: D,
    layout: FlashLayoutMode,
    util: f64,
    scale: u64,
    ops: &[Op],
    budget: u64,
    torn_bytes: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let config = crash_config(layout, util, scale);
    let mut crash = CrashDevice::new(victim);
    crash.arm(budget);
    crash.set_torn_write_bytes(torn_bytes);
    let mut clam = Clam::new(crash, config.clone()).unwrap();
    let name = clam.device().name();
    drive(&mut clam, ops);

    // Every value the workload ever bound to a key: nothing else may
    // come back from recovery.
    let mut everything: HashMap<u64, HashSet<u64>> = HashMap::new();
    for &(k, v, del) in ops {
        if !del {
            everything.entry(k).or_default().insert(v);
        }
    }

    let mut image = clam.into_device().into_inner();
    let truth = trusted_scan(&mut image, &config);
    let (mut recovered, report) = Clam::recover(image, config.clone()).unwrap();

    prop_assert!(report.accepted == truth.accepted.len(), "accepted mismatch on {}", name);
    prop_assert!(report.torn == truth.torn, "torn mismatch on {}", name);
    prop_assert!(report.stale == truth.stale, "stale mismatch on {}", name);
    prop_assert!(report.empty == truth.empty, "empty mismatch on {}", name);
    prop_assert_eq!(report.slots_scanned, config.total_flash_slots());
    let durable_entries: usize = truth.accepted.iter().map(|(_, e)| e.len()).sum();
    prop_assert_eq!(report.entries_recovered, durable_entries);

    // Expected value per durable key: the youngest accepted incarnation
    // holding it wins (all incarnations holding a key belong to the
    // key's one super table, and `accepted` is youngest-first).
    let mut expected: HashMap<u64, u64> = HashMap::new();
    for (_, entries) in &truth.accepted {
        for e in entries {
            expected.entry(e.key).or_insert(e.value);
        }
    }
    let queried: HashSet<u64> = ops.iter().map(|&(k, _, _)| k).collect();
    for &k in &queried {
        let found = recovered.lookup(k).unwrap();
        match expected.get(&k) {
            Some(&v) => {
                prop_assert!(
                    found.value == Some(v),
                    "durable key {k:#x} lost or wrong on {}: got {:?}, want {v}",
                    name,
                    found.value
                );
                prop_assert!(
                    everything.get(&k).is_some_and(|vs| vs.contains(&v)),
                    "recovery fabricated value {v} for key {k:#x} on {}",
                    name
                );
            }
            None => {
                prop_assert!(
                    found.value.is_none(),
                    "recovery fabricated {:?} for non-durable key {k:#x} on {}",
                    found.value,
                    name
                );
            }
        }
    }
    prop_assert_eq!(recovered.stats().recoveries, 1);
    Ok(())
}

/// Measures how many data-effect operations the full workload performs on
/// this backend (an unarmed twin run), so crash budgets can be sampled as
/// a fraction of the real schedule.
fn ops_to_complete<D: Device>(
    twin: D,
    layout: FlashLayoutMode,
    util: f64,
    scale: u64,
    ops: &[Op],
) -> u64 {
    let config = crash_config(layout, util, scale);
    let mut clam = Clam::new(CrashDevice::new(twin), config).unwrap();
    drive(&mut clam, ops);
    clam.device().crash_stats().ops_applied
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// **Acknowledged durable inserts survive a power cut** on all five
    /// backends: cut the device after an arbitrary fraction of its
    /// data-effect schedule (torn trailing write included), recover from
    /// the image alone, and check every key the trusted scan says is
    /// durable comes back with exactly the value the youngest surviving
    /// incarnation stored — and that nothing the workload never wrote is
    /// fabricated. The raw flash chip runs the partitioned layout at
    /// `scale = 8` (each super table's partition is exactly one erase
    /// block), exercising the erase-before-program wrap path under cuts.
    #[test]
    fn acknowledged_inserts_survive_crash(
        raw_ops in vec((0u64..600, any::<u64>(), 0u8..8), 500..2_400),
        frac in 0u32..1_050_000,
        torn_bytes in 0usize..8_192,
    ) {
        let fp = |k: u64| hash_with_seed(k, 0x6a7c4);
        let ops: Vec<Op> = raw_ops.iter().map(|&(k, v, d)| (fp(k), v, d == 0)).collect();
        let frac = frac as f64 / 1_000_000.0;
        const CAP: u64 = 1 << 20;

        let budget = |total: u64| ((total as f64) * frac) as u64;

        let total = ops_to_complete(Ssd::intel(CAP).unwrap(), FlashLayoutMode::GlobalLog, 0.9, 1, &ops);
        check_crash_then_recover(
            Ssd::intel(CAP).unwrap(), FlashLayoutMode::GlobalLog, 0.9, 1, &ops, budget(total), torn_bytes,
        )?;
        // The raw chip's scale-8 buffers hold ~1.8k distinct keys per
        // table, so its crash workload is amplified: the generated ops
        // are re-keyed over a 16k-key space (enough distinct keys to
        // flush each table past its 4-slot partition and wrap, erasing
        // live blocks under the cut).
        let chip_ops: Vec<Op> = (0..36_000usize)
            .map(|i| {
                let (_, v, d) = raw_ops[i % raw_ops.len()];
                (fp(0x1000_0000 + (i as u64 * 7) % 16_000), v ^ i as u64, d == 0)
            })
            .collect();
        let total = ops_to_complete(
            FlashChip::new(CAP).unwrap(), FlashLayoutMode::PartitionPerTable, 0.9, 8, &chip_ops,
        );
        check_crash_then_recover(
            FlashChip::new(CAP).unwrap(), FlashLayoutMode::PartitionPerTable, 0.9, 8,
            &chip_ops, budget(total), torn_bytes,
        )?;
        let total = ops_to_complete(
            MagneticDisk::new(CAP).unwrap(), FlashLayoutMode::GlobalLog, 0.9, 1, &ops,
        );
        check_crash_then_recover(
            MagneticDisk::new(CAP).unwrap(), FlashLayoutMode::GlobalLog, 0.9, 1,
            &ops, budget(total), torn_bytes,
        )?;
        let total = ops_to_complete(DramDevice::new(CAP).unwrap(), FlashLayoutMode::GlobalLog, 0.5, 1, &ops);
        check_crash_then_recover(
            DramDevice::new(CAP).unwrap(), FlashLayoutMode::GlobalLog, 0.5, 1,
            &ops, budget(total), torn_bytes,
        )?;

        // The file backend does real I/O, so it needs its own temp paths.
        let dir = std::env::temp_dir();
        let twin_path = dir.join(format!("clam-crash-twin-{}", std::process::id()));
        let victim_path = dir.join(format!("clam-crash-victim-{}", std::process::id()));
        let total = ops_to_complete(
            FileDevice::create(&twin_path, CAP).unwrap(),
            FlashLayoutMode::GlobalLog, 0.9, 1, &ops,
        );
        let outcome = check_crash_then_recover(
            FileDevice::create(&victim_path, CAP).unwrap(),
            FlashLayoutMode::GlobalLog, 0.9, 1, &ops, budget(total), torn_bytes,
        );
        std::fs::remove_file(&twin_path).ok();
        std::fs::remove_file(&victim_path).ok();
        outcome?;
    }
}

// ---------------------------------------------------------------------
// Survivor equivalence
// ---------------------------------------------------------------------

/// A single-super-table CLAM (the whole buffer budget is one table) over
/// an 8-slot log, so flush boundaries are exactly the device's write
/// schedule: the `m`-th data-effect operation is the `m`-th incarnation
/// write, which makes "cut precisely between flush `m` and flush `m+1`"
/// expressible as a crash budget of `m`.
fn single_table_config(util: f64) -> ClamConfig {
    let config = ClamConfig {
        flash_capacity: 32 << 10,
        dram_bytes: 1 << 20,
        buffer_bytes_total: 4 * 1024,
        buffer_bytes_per_table: 4 * 1024,
        entry_size: 16,
        max_buffer_utilization: util,
        eviction: EvictionPolicy::Fifo,
        filter_mode: FilterMode::BitSliced,
        layout: FlashLayoutMode::GlobalLog,
        enable_buffering: true,
    };
    config.validate().expect("valid single-table config");
    config
}

/// Crashes a CLAM exactly between two flushes, recovers it, and checks it
/// is observationally equivalent to a **survivor**: a never-crashed CLAM
/// fed only the durable prefix of the op stream. Both are then driven
/// through the identical tail (the ops the crash destroyed plus lookups
/// over every key) and must produce identical outcomes, identical
/// hit/miss/flush statistics and identical flash traffic counts.
///
/// Needs three device instances: a scratch run to locate the flush
/// boundaries, the crash victim, and the reference survivor.
fn check_recovered_equivalent_to_survivor<D: Device>(
    scratch: D,
    victim: D,
    reference: D,
    util: f64,
    ops: &[(u64, u64)],
    m_pick: usize,
    torn_bytes: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let config = single_table_config(util);

    // Locate the op indices that trigger each flush (device-independent
    // for a fixed config, but run on the same backend for fidelity).
    let mut probe = Clam::new(scratch, config.clone()).unwrap();
    let name = probe.device().name();
    let mut flush_at: Vec<usize> = Vec::new();
    for (i, &(k, v)) in ops.iter().enumerate() {
        if probe.insert(k, v).unwrap().flushed {
            flush_at.push(i);
        }
    }
    if flush_at.len() < 2 {
        return Ok(()); // workload too small to cut between flushes
    }
    let m = 1 + m_pick % (flush_at.len() - 1); // cut after flush m, 1-based
    let boundary = flush_at[m - 1]; // index of the insert that triggered flush m

    // Victim: power cut after exactly m incarnation writes, with a torn
    // prefix of the (m+1)-th. The prefix must stop short of the flushed
    // payload (a full buffer is ~230 entries ≈ 3.7 KiB after the header),
    // otherwise a "torn" write whose page tail was zeros anyway persists
    // a complete, checksum-valid incarnation — a legitimate outcome, but
    // one that would shift the durable prefix this test aligns against.
    let mut crash = CrashDevice::cut_after(victim, m as u64);
    crash.set_torn_write_bytes(torn_bytes.clamp(1, 1_500));
    let mut crashed = Clam::new(crash, config.clone()).unwrap();
    drive(&mut crashed, &ops.iter().map(|&(k, v)| (k, v, false)).collect::<Vec<Op>>());
    let image = crashed.into_device().into_inner();
    let (mut recovered, report) = Clam::recover(image, config.clone()).unwrap();
    prop_assert!(
        report.accepted == m,
        "expected {m} incarnations on {name}, got {}",
        report.accepted
    );

    // Survivor: a never-crashed CLAM fed the durable prefix. The insert
    // at `boundary` was acknowledged but its entry still sat in DRAM when
    // the power died, so the recovered arm replays it to align buffers.
    let mut survivor = Clam::new(reference, config).unwrap();
    for &(k, v) in &ops[..=boundary] {
        survivor.insert(k, v).unwrap();
    }
    recovered.insert(ops[boundary].0, ops[boundary].1).unwrap();

    recovered.reset_stats();
    survivor.reset_stats();
    recovered.device_mut().reset_stats();
    survivor.device_mut().reset_stats();

    // Identical tail: the ops the crash destroyed, then lookups over
    // every key the workload ever touched.
    for &(k, v) in &ops[boundary + 1..] {
        let r = recovered.insert(k, v).unwrap();
        let s = survivor.insert(k, v).unwrap();
        prop_assert!(r.flushed == s.flushed, "flush cadence diverged on {name}");
        prop_assert!(r.evictions == s.evictions, "eviction cadence diverged on {name}");
    }
    for (i, &(k, _)) in ops.iter().enumerate() {
        let r = recovered.lookup(k).unwrap();
        let s = survivor.lookup(k).unwrap();
        prop_assert!(r.value == s.value, "value mismatch on {name} key index {i}");
        prop_assert!(r.source == s.source, "source mismatch on {name} key index {i}");
        prop_assert!(r.flash_reads == s.flash_reads, "read-count mismatch on {name} key index {i}");
    }

    let rs = recovered.stats().clone();
    let ss = survivor.stats().clone();
    prop_assert!(rs.flushes == ss.flushes, "flush count mismatch on {name}");
    prop_assert!(rs.forced_evictions == ss.forced_evictions, "forced eviction mismatch on {name}");
    prop_assert!(rs.reinsertions == ss.reinsertions, "reinsertion count mismatch on {name}");
    prop_assert!(rs.lookup_hits == ss.lookup_hits, "hit count mismatch on {name}");
    prop_assert!(rs.lookup_misses == ss.lookup_misses, "miss count mismatch on {name}");
    prop_assert!(
        rs.lookup_flash_reads == ss.lookup_flash_reads,
        "lookup flash read mismatch on {name}"
    );
    let ri = recovered.device().stats();
    let si = survivor.device().stats();
    prop_assert!(ri.writes == si.writes, "write count mismatch on {name}");
    prop_assert!(ri.bytes_written == si.bytes_written, "written bytes mismatch on {name}");
    prop_assert!(ri.reads == si.reads, "read count mismatch on {name}");
    prop_assert!(ri.bytes_read == si.bytes_read, "read bytes mismatch on {name}");
    prop_assert!(ri.trims == si.trims, "trim count mismatch on {name}");
    prop_assert!(ri.erases == si.erases, "erase count mismatch on {name}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// **Recovery is equivalent to never having crashed**: cut a CLAM at
    /// a flush boundary, recover it, and drive it through the same tail
    /// as a survivor that was fed only the durable prefix — every lookup
    /// outcome, every statistic and every flash traffic counter must
    /// agree. The workload stays below one log wrap so the durable
    /// prefix is exactly the first `m` incarnations.
    #[test]
    fn recovered_state_equivalent_to_survivor(
        raw_ops in vec((0u64..500, any::<u64>()), 500..1_000),
        m_pick in 0usize..64,
        torn_bytes in 1usize..4_095,
    ) {
        let fp = |k: u64| hash_with_seed(k, 0x51ee9);
        let ops: Vec<(u64, u64)> = raw_ops.iter().map(|&(k, v)| (fp(k), v)).collect();
        const CAP: u64 = 1 << 20;
        check_recovered_equivalent_to_survivor(
            Ssd::intel(CAP).unwrap(),
            Ssd::intel(CAP).unwrap(),
            Ssd::intel(CAP).unwrap(),
            0.9, &ops, m_pick, torn_bytes,
        )?;
        check_recovered_equivalent_to_survivor(
            DramDevice::new(CAP).unwrap(),
            DramDevice::new(CAP).unwrap(),
            DramDevice::new(CAP).unwrap(),
            0.5, &ops, m_pick, torn_bytes,
        )?;
    }
}

// ---------------------------------------------------------------------
// Targeted crash scenarios
// ---------------------------------------------------------------------

/// A higher-epoch rewrite of the same flush sequence shadows the old
/// copy: when a recovered CLAM re-flushes `seq = n` into a different
/// slot and a *second* crash leaves both images on flash, the next
/// recovery must keep only the younger lifetime's copy.
#[test]
fn stale_epoch_copy_is_shadowed_on_recovery() {
    let config = single_table_config(0.9);
    let mut device = DramDevice::new(32 << 10).unwrap();
    let page_size = device.geometry().page_size as usize;
    let layout = IncarnationLayout::new(4096, page_size).unwrap();
    let key = hash_with_seed(0xdead, 0x51ee9);

    // Two checksum-valid images of flush seq 5 with different payloads:
    // the epoch-1 lifetime wrote value 111 to slot 2; a recovered epoch-2
    // lifetime re-issued seq 5 with value 222 to slot 3.
    let old = layout
        .serialize_identified(
            &[Entry::new(key, 111)],
            IncarnationIdentity { table: 0, seq: 5, epoch: 1 },
        )
        .unwrap();
    let new = layout
        .serialize_identified(
            &[Entry::new(key, 222)],
            IncarnationIdentity { table: 0, seq: 5, epoch: 2 },
        )
        .unwrap();
    device.write_at(2 * 4096, &old).unwrap();
    device.write_at(3 * 4096, &new).unwrap();

    let (mut recovered, report) = Clam::recover(device, config).unwrap();
    assert_eq!(report.accepted, 1, "exactly one copy of seq 5 may survive");
    assert_eq!(report.stale, 1, "the epoch-1 copy is shadowed");
    assert_eq!(report.empty, 6);
    assert_eq!(report.torn, 0);
    assert_eq!(report.seq_resumed, 5);
    assert!(report.epoch >= 3, "the next lifetime must outrank both");
    let found = recovered.lookup(key).unwrap();
    assert_eq!(found.value, Some(222), "the younger epoch's value wins");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Recovery never panics and never fabricates structure from garbage:
    /// a device full of random byte soup — including chunks that plant
    /// the incarnation magic at page boundaries — recovers to a CLAM
    /// whose slot classification is exhaustive (every slot counted
    /// exactly once) and whose lookups return cleanly.
    #[test]
    fn recovery_survives_byte_soup(
        chunks in vec((0u64..8, 0usize..4_000, vec(any::<u8>(), 1..300), any::<bool>()), 1..24),
        probes in vec(any::<u64>(), 1..16),
    ) {
        let config = crash_config(FlashLayoutMode::GlobalLog, 0.5, 1);
        let mut device = DramDevice::new(32 << 10).unwrap();
        for (slot, pos, bytes, plant_magic) in &chunks {
            let mut soup = bytes.clone();
            if *plant_magic {
                // Plant the on-flash magic at the slot's page start so the
                // parser gets past the cheap check and into the CRC.
                device.write_at(slot * 4096, b"BHIN").unwrap();
            }
            let offset = slot * 4096 + (*pos as u64).min(4096 - soup.len() as u64);
            soup.truncate(4096 - (offset % 4096) as usize);
            device.write_at(offset, &soup).unwrap();
        }
        let (mut recovered, report) = Clam::recover(device, config).unwrap();
        prop_assert_eq!(
            report.accepted + report.torn + report.stale + report.empty,
            report.slots_scanned as usize
        );
        prop_assert!(report.entries_recovered <= 8 * 254, "bounded by flash capacity");
        for &p in &probes {
            let _ = recovered.lookup(p).unwrap();
        }
    }
}

/// Finds the smallest crash budget whose applied-write ledger shows
/// `wraps` writes at byte offset `target` — i.e. the budget that lets the
/// log wrap onto `target` exactly `wraps` times — by replaying the
/// workload against fresh devices with increasing budgets.
fn budget_reaching_offset<D: Device>(
    make: impl Fn() -> D,
    config: &ClamConfig,
    ops: &[Op],
    target: u64,
    wraps: usize,
) -> Option<u64> {
    let total = {
        let mut twin = Clam::new(CrashDevice::new(make()), config.clone()).unwrap();
        drive(&mut twin, ops);
        twin.device().crash_stats().ops_applied
    };
    for budget in 1..=total {
        let mut clam = Clam::new(CrashDevice::cut_after(make(), budget), config.clone()).unwrap();
        drive(&mut clam, ops);
        let hits = clam.device().applied_writes().iter().filter(|&&(o, _)| o == target).count();
        if hits >= wraps {
            return Some(budget);
        }
    }
    None
}

/// **Regression: a power cut mid-way through a log-wrap flush.** The 9th
/// flush of the 8-slot global log re-writes slot 0 over the oldest
/// incarnation; cutting power inside that write must leave slot 0 torn —
/// neither the old incarnation (half overwritten) nor the new one (half
/// written) may survive — while every other slot's data is untouched, and
/// the recovered CLAM must keep writing cleanly past the wrap point.
#[test]
fn mid_flush_crash_during_log_wrap_discards_both_incarnations() {
    const CAP: u64 = 1 << 20;
    let config = crash_config(FlashLayoutMode::GlobalLog, 0.9, 1);
    let ops: Vec<Op> = (0..3_600u64).map(|i| (hash_with_seed(i % 900, 0x77aa), i, false)).collect();

    // The budget that applies the wrap write (the 2nd write at offset 0),
    // minus one, makes that write the fatal one.
    let wrap_budget = budget_reaching_offset(|| Ssd::intel(CAP).unwrap(), &config, &ops, 0, 2)
        .expect("workload must wrap the log")
        - 1;
    let mut crash = CrashDevice::cut_after(Ssd::intel(CAP).unwrap(), wrap_budget);
    crash.set_torn_write_bytes(1_000);
    let mut clam = Clam::new(crash, config.clone()).unwrap();
    drive(&mut clam, &ops);
    let stats = clam.device().crash_stats();
    assert_eq!(stats.torn_write, Some((0, 1_000)), "the cut must land on the wrap write");

    let mut image = clam.into_device().into_inner();
    let page_size = image.geometry().page_size as usize;
    let layout = IncarnationLayout::new(4096, page_size).unwrap();
    let mut slot0 = vec![0u8; 4096];
    image.read_at(0, &mut slot0).unwrap();
    assert!(
        matches!(scan_incarnation(&slot0, &layout), SlotScan::Torn { .. }),
        "slot 0 must hold neither the old nor the new incarnation"
    );

    let truth = trusted_scan(&mut image, &config);
    let (mut recovered, report) = Clam::recover(image, config).unwrap();
    assert_eq!(report.torn, truth.torn);
    assert!(report.torn >= 1, "the wrap write is torn");
    assert_eq!(report.accepted, truth.accepted.len());
    for (_, entries) in &truth.accepted {
        for e in entries {
            // Durable survivors must be intact; exact-value agreement is
            // covered by the property test, presence is the point here.
            assert!(recovered.lookup(e.key).unwrap().value.is_some(), "lost durable key");
        }
    }

    // The log must keep rolling: write several more wraps' worth of data
    // through the recovered CLAM and spot-check the youngest generation.
    for i in 0..2_000u64 {
        recovered.insert(hash_with_seed(i % 500, 0x77ab), i).unwrap();
    }
    recovered.flush_all().unwrap();
    let probe = hash_with_seed(499, 0x77ab);
    assert!(recovered.lookup(probe).unwrap().value.is_some());
}

/// **Regression: a power cut on a raw flash chip's mid-block flush.** In
/// the partitioned layout each super table's partition is one 128 KiB
/// erase block of four 32 KiB slots, erased lazily when the partition
/// wraps. A cut inside a mid-block incarnation write leaves that slot's
/// pages half-programmed — and raw NAND cannot program them again without
/// an erase, which would also wipe the live incarnation sharing the
/// block. Recovery must step the partition's write pointer past the dirty
/// slot so resumed flushes program clean pages, reclaiming the slot when
/// the partition next wraps.
#[test]
fn chip_recovers_past_a_mid_block_torn_write() {
    let config = crash_config(FlashLayoutMode::PartitionPerTable, 0.9, 8);
    let cap = config.flash_capacity; // 256 KiB = 2 erase blocks
                                     // All-distinct keys: each table's ~1.8k-entry buffer must fill twice
                                     // to reach its second slot.
    let ops: Vec<Op> = (0..9_000u64).map(|i| (hash_with_seed(i, 0xc41b), i, false)).collect();

    // Cut inside the first write to slot 1 (offset 32 KiB): mid-block,
    // with slot 0's incarnation live in the same erase block.
    let budget =
        budget_reaching_offset(|| FlashChip::new(cap).unwrap(), &config, &ops, 32 << 10, 1)
            .expect("table 0 must reach its second flush")
            - 1;
    let mut crash = CrashDevice::cut_after(FlashChip::new(cap).unwrap(), budget);
    crash.set_torn_write_bytes(2_048); // exactly one programmed flash page
    let mut clam = Clam::new(crash, config.clone()).unwrap();
    drive(&mut clam, &ops);
    let stats = clam.device().crash_stats();
    assert_eq!(stats.torn_write, Some((32 << 10, 2_048)), "the cut must tear slot 1");

    let mut image = clam.into_device().into_inner();
    let truth = trusted_scan(&mut image, &config);
    let (mut recovered, report) = Clam::recover(image, config.clone()).unwrap();
    assert!(report.torn >= 1, "slot 1 is half-programmed");
    assert_eq!(report.accepted, truth.accepted.len());

    // Resumed flushes must not program the dirty slot: drive enough
    // distinct keys through every table to wrap both partitions (which
    // erases and reclaims the torn slot) and verify the youngest data
    // lands.
    for i in 0..20_000u64 {
        recovered.insert(hash_with_seed(i, 0xc41c), i).unwrap();
    }
    recovered.flush_all().unwrap();
    assert!(recovered.stats().flushes >= 8, "both partitions wrapped");
    let probe = hash_with_seed(19_999, 0xc41c);
    assert!(recovered.lookup(probe).unwrap().value.is_some());
}
