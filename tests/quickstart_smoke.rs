//! Quickstart smoke test: drives the paper's candidate configuration at
//! 1/512 scale through an insert/lookup/delete round trip, mirroring the
//! doc example in `crates/bufferhash/src/lib.rs` and the `quickstart`
//! example.

use clam::paper_clam;

#[test]
fn paper_clam_insert_lookup_roundtrip() {
    let mut clam = paper_clam(1.0 / 512.0);

    // Enough inserts to flush several buffers to flash, so lookups exercise
    // the Bloom-filter → incarnation path and not just the DRAM buffer.
    let n = 20_000u64;
    for i in 0..n {
        let key = clam::bufferhash::hash_with_seed(i, 0x51de);
        clam.insert(key, i * 3 + 1).unwrap();
    }

    // Every inserted key is found with its latest value.
    for i in 0..n {
        let key = clam::bufferhash::hash_with_seed(i, 0x51de);
        let hit = clam.lookup(key).unwrap();
        assert_eq!(hit.value, Some(i * 3 + 1), "key {i} lost");
    }

    // Updates shadow older incarnations.
    let key = clam::bufferhash::hash_with_seed(7, 0x51de);
    clam.insert(key, 999).unwrap();
    assert_eq!(clam.lookup(key).unwrap().value, Some(999));

    // Deletes are observed.
    clam.delete(key).unwrap();
    assert_eq!(clam.lookup(key).unwrap().value, None);

    // Absent keys miss (the filter may route us to flash, but the value
    // must come back None).
    let absent = clam::bufferhash::hash_with_seed(u64::MAX, 0xdead);
    assert_eq!(clam.lookup(absent).unwrap().value, None);
}
