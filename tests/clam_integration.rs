//! Cross-crate integration tests: the CLAM driven through realistic
//! application flows on every simulated medium.

use clam::bufferhash::{hash_with_seed, Clam, ClamConfig, EvictionPolicy, LookupSource};
use clam::flashsim::{Device, FlashChip, MagneticDisk, SimDuration, Ssd};

fn key(i: u64) -> u64 {
    hash_with_seed(i, 0x1e57)
}

#[test]
fn clam_on_every_medium_round_trips_and_orders_latencies() {
    let cfg = || ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
    let mut on_intel = Clam::new(Ssd::intel(8 << 20).unwrap(), cfg()).unwrap();
    let mut on_transcend = Clam::new(Ssd::transcend(8 << 20).unwrap(), cfg()).unwrap();
    let mut on_disk = Clam::new(MagneticDisk::new(8 << 20).unwrap(), cfg()).unwrap();

    for i in 0..60_000u64 {
        on_intel.insert(key(i), i).unwrap();
        on_transcend.insert(key(i), i).unwrap();
        on_disk.insert(key(i), i).unwrap();
    }
    for i in (0..60_000u64).step_by(997) {
        assert_eq!(on_intel.lookup(key(i)).unwrap().value, Some(i));
        assert_eq!(on_transcend.lookup(key(i)).unwrap().value, Some(i));
        assert_eq!(on_disk.lookup(key(i)).unwrap().value, Some(i));
    }
    // Relative lookup cost ordering must match the media (paper §7.3.2).
    let intel = on_intel.stats().lookups.mean();
    let transcend = on_transcend.stats().lookups.mean();
    let disk = on_disk.stats().lookups.mean();
    assert!(intel <= transcend, "Intel {intel} should not be slower than Transcend {transcend}");
    assert!(transcend < disk, "SSD {transcend} should be faster than disk {disk}");
}

#[test]
fn clam_runs_on_a_raw_flash_chip_with_partitioned_layout() {
    let mut cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
    cfg.layout = clam::bufferhash::FlashLayoutMode::PartitionPerTable;
    // Align the per-table buffer with the chip's erase block (the §6.4
    // recommendation for raw chips).
    cfg.buffer_bytes_per_table = 128 * 1024;
    cfg.buffer_bytes_total = cfg.buffer_bytes_total.max(cfg.buffer_bytes_per_table * 2);
    let chip = FlashChip::new(4 << 20).unwrap();
    let mut clam = Clam::new(chip, cfg).unwrap();
    for i in 0..80_000u64 {
        clam.insert(key(i), i).unwrap();
    }
    // Recent keys are found; the chip saw erases (circular partitions).
    for i in (70_000..80_000u64).step_by(487) {
        assert_eq!(clam.lookup(key(i)).unwrap().value, Some(i));
    }
    assert!(clam.device().stats().erases > 0, "partitioned layout must erase blocks");
}

#[test]
fn wrap_around_evicts_strictly_oldest_keys_first() {
    let cfg = ClamConfig::small_test(2 << 20, 1 << 20).unwrap();
    let mut clam = Clam::new(Ssd::intel(2 << 20).unwrap(), cfg).unwrap();
    let n = 300_000u64;
    for i in 0..n {
        clam.insert(key(i), i).unwrap();
    }
    // The newest 10% must be present; the oldest 10% must be gone.
    for i in (n - n / 10..n).step_by(1013) {
        assert_eq!(clam.lookup(key(i)).unwrap().value, Some(i), "recent key {i} missing");
    }
    let mut stale_found = 0;
    for i in (0..n / 10).step_by(1013) {
        if clam.lookup(key(i)).unwrap().value.is_some() {
            stale_found += 1;
        }
    }
    assert_eq!(stale_found, 0, "oldest keys should have been evicted FIFO");
}

#[test]
fn deletes_and_updates_are_honoured_across_flushes_and_media() {
    let cfg = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
    let mut clam = Clam::new(Ssd::transcend(8 << 20).unwrap(), cfg).unwrap();
    // Insert, push to flash, update, delete, re-insert - interleaved with
    // background churn.
    for round in 0..5u64 {
        for i in 0..200u64 {
            clam.insert(key(i), round * 1000 + i).unwrap();
        }
        for i in 5_000 + round * 10_000..5_000 + (round + 1) * 10_000 {
            clam.insert(key(i), i).unwrap(); // churn
        }
        for i in (0..200u64).step_by(3) {
            clam.delete(key(i)).unwrap();
        }
        for i in (0..200u64).step_by(3) {
            assert_eq!(clam.lookup(key(i)).unwrap().value, None, "deleted key resurfaced");
        }
        for i in (1..200u64).step_by(3) {
            assert_eq!(
                clam.lookup(key(i)).unwrap().value,
                Some(round * 1000 + i),
                "update not visible"
            );
        }
    }
}

#[test]
fn lru_keeps_hot_keys_alive_through_wraparound() {
    let mut cfg = ClamConfig::small_test(2 << 20, 1 << 20).unwrap();
    cfg.eviction = EvictionPolicy::Lru;
    let mut clam = Clam::new(Ssd::intel(2 << 20).unwrap(), cfg).unwrap();
    let hot: Vec<u64> = (0..50u64).map(key).collect();
    for &k in &hot {
        clam.insert(k, 7).unwrap();
    }
    // Churn far beyond capacity, but touch the hot keys periodically.
    for i in 1_000..250_000u64 {
        clam.insert(key(i), i).unwrap();
        if i % 2_000 == 0 {
            for &k in &hot {
                clam.lookup(k).unwrap();
            }
        }
    }
    let surviving = hot.iter().filter(|&&k| clam.lookup(k).unwrap().value.is_some()).count();
    assert!(
        surviving > hot.len() / 2,
        "LRU should keep most hot keys alive, only {surviving}/{} survived",
        hot.len()
    );
}

#[test]
fn lookup_sources_are_reported_accurately() {
    let cfg = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
    let mut clam = Clam::new(Ssd::intel(8 << 20).unwrap(), cfg).unwrap();
    clam.insert(key(1), 1).unwrap();
    assert_eq!(clam.lookup(key(1)).unwrap().source, LookupSource::Buffer);
    for i in 100..40_000u64 {
        clam.insert(key(i), i).unwrap();
    }
    assert_eq!(clam.lookup(key(1)).unwrap().source, LookupSource::Flash);
    clam.delete(key(1)).unwrap();
    assert_eq!(clam.lookup(key(1)).unwrap().source, LookupSource::Deleted);
    assert_eq!(clam.lookup(key(999_999_999)).unwrap().source, LookupSource::Miss);
}

#[test]
fn idle_time_is_forwarded_to_the_device() {
    let cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
    let mut clam = Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap();
    for i in 0..50_000u64 {
        clam.insert(key(i), i).unwrap();
    }
    // Just exercises the pass-through; must not panic or change results.
    clam.idle(SimDuration::from_secs(1));
    assert_eq!(clam.lookup(key(49_999)).unwrap().value, Some(49_999));
}
